#include "obs/json_check.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace fiveg::obs {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

// Recursive-descent parser over a string_view with one-token lookahead.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<JsonValue> parse(std::string* error) {
    auto root = std::make_unique<JsonValue>();
    if (!value(*root)) {
      if (error != nullptr) *error = error_;
      return nullptr;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing data after document");
      if (error != nullptr) *error = error_;
      return nullptr;
    }
    return root;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty()) {
      std::ostringstream os;
      os << msg << " at byte " << pos_;
      error_ = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default:
        return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      if (!consume(':')) return false;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return fail("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > before;
    };
    // Integer part: 0, or nonzero digit run (no leading zeros).
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (!digits()) {
      return fail("expected number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return fail("expected exponent digits");
    }
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::unique_ptr<JsonValue> json_parse(std::string_view text,
                                      std::string* error) {
  return Parser(text).parse(error);
}

bool json_valid(std::string_view text, std::string* error) {
  return json_parse(text, error) != nullptr;
}

TraceCheck check_chrome_trace(std::string_view text) {
  TraceCheck check;
  std::string error;
  const auto doc = json_parse(text, &error);
  if (doc == nullptr) {
    check.error = "invalid JSON: " + error;
    return check;
  }
  if (!doc->is(JsonValue::Type::kObject)) {
    check.error = "top level is not an object";
    return check;
  }
  const JsonValue* events = doc->get("traceEvents");
  if (events == nullptr || !events->is(JsonValue::Type::kArray)) {
    check.error = "missing traceEvents array";
    return check;
  }

  std::set<std::string> cats;
  std::set<std::string> procs;
  // Counter ('C') samples must be time-monotonic per (pid, tid, name)
  // track — Perfetto silently reorders or drops violators. Metadata must
  // be unique per target: a second process_name for one pid (or
  // thread_name for one (pid, tid)) means two writers raced on the track.
  std::map<std::tuple<double, double, std::string>, double> counter_last_ts;
  std::set<double> named_pids;
  std::set<std::pair<double, double>> named_tids;
  for (const JsonValue& e : events->array) {
    if (!e.is(JsonValue::Type::kObject)) {
      check.error = "trace event is not an object";
      return check;
    }
    const JsonValue* ph = e.get("ph");
    const JsonValue* name = e.get("name");
    const JsonValue* pid = e.get("pid");
    if (ph == nullptr || !ph->is(JsonValue::Type::kString) ||
        name == nullptr || !name->is(JsonValue::Type::kString) ||
        pid == nullptr || !pid->is(JsonValue::Type::kNumber)) {
      check.error = "trace event missing ph/name/pid";
      return check;
    }
    const JsonValue* tid = e.get("tid");
    const double tid_num =
        tid != nullptr && tid->is(JsonValue::Type::kNumber) ? tid->number
                                                            : 0.0;
    if (ph->string == "M") {
      if (name->string == "process_name") {
        if (!named_pids.insert(pid->number).second) {
          check.error = "duplicate process_name metadata for pid " +
                        std::to_string(pid->number);
          return check;
        }
        if (const JsonValue* args = e.get("args")) {
          if (const JsonValue* n = args->get("name")) procs.insert(n->string);
        }
      } else if (name->string == "thread_name") {
        if (!named_tids.insert({pid->number, tid_num}).second) {
          check.error = "duplicate thread_name metadata for pid " +
                        std::to_string(pid->number) + " tid " +
                        std::to_string(tid_num);
          return check;
        }
      }
      continue;
    }
    const JsonValue* ts = e.get("ts");
    if (ts == nullptr || !ts->is(JsonValue::Type::kNumber)) {
      check.error = "trace event missing ts";
      return check;
    }
    if (ph->string == "C") {
      const auto key = std::make_tuple(pid->number, tid_num, name->string);
      const auto it = counter_last_ts.find(key);
      if (it != counter_last_ts.end() && ts->number < it->second) {
        check.error = "counter track '" + name->string +
                      "' not time-monotonic (ts " +
                      std::to_string(ts->number) + " after " +
                      std::to_string(it->second) + ")";
        return check;
      }
      counter_last_ts[key] = ts->number;
    }
    ++check.event_count;
    if (const JsonValue* cat = e.get("cat")) {
      if (cat->is(JsonValue::Type::kString)) cats.insert(cat->string);
    }
  }
  check.categories.assign(cats.begin(), cats.end());
  check.processes.assign(procs.begin(), procs.end());
  if (const JsonValue* other = doc->get("otherData")) {
    if (const JsonValue* dropped = other->get("events_dropped");
        dropped != nullptr && dropped->is(JsonValue::Type::kNumber) &&
        dropped->number >= 0) {
      check.dropped_events = static_cast<std::uint64_t>(dropped->number);
    }
  }
  check.ok = true;
  return check;
}

TraceCheck check_chrome_trace(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return check_chrome_trace(buf.str());
}

}  // namespace fiveg::obs

// Named counters/gauges/histograms for the observability layer. One
// MetricsRegistry exists per experiment run (installed into the thread's
// obs::Scope by the Runner); instrumented layers fetch stable handles once
// and bump them with plain non-atomic stores, so the enabled path is a few
// instructions and the disabled path is a null-pointer check.
//
// Metrics are split by clock domain: kSim metrics are pure functions of the
// simulation (byte-identical across --jobs values and part of the
// fiveg-runall/v3 `counters` object), while kWall metrics carry wall-clock
// profiling data and are excluded from determinism diffs, exactly like
// ExperimentResult::wall_ms.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/digest.h"

namespace fiveg::obs {

/// Which clock domain a metric derives from (see file comment).
enum class MetricClock { kSim, kWall };

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value plus a high-water mark (for queue depths etc.).
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    update_max(v);
  }

  /// Raises the high-water mark without touching the current value.
  void update_max(double v) noexcept {
    if (v > max_) max_ = v;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept {
    return max_ == kUnset ? 0.0 : max_;
  }

  /// Folds another gauge in: the other's value wins (last writer in merge
  /// order) and the high-water mark widens. A never-written gauge leaves
  /// this one untouched.
  void merge(const Gauge& other) noexcept {
    if (other.max_ == kUnset) return;
    value_ = other.value_;
    update_max(other.max_);
  }

 private:
  static constexpr double kUnset = -std::numeric_limits<double>::infinity();
  double value_ = 0.0;
  double max_ = kUnset;
};

/// Fixed-footprint histogram: exact count/sum/min/max plus power-of-two
/// buckets over the value's binary exponent, good for ~3 significant bits
/// of quantile resolution across 19 decades — plenty for latency profiles.
class Histogram {
 public:
  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Approximate quantile (q in [0,1]) from the log2 buckets: returns the
  /// upper bound of the bucket holding the q-th observation.
  [[nodiscard]] double quantile(double q) const noexcept;

  static constexpr int kBuckets = 64;

  /// Raw bucket counts; bucket i covers [2^(i-32), 2^(i-31)).
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }

  /// Rebuilds a histogram from its export surface (sparse non-empty
  /// buckets plus the exact sum/min/max). The count is the bucket total —
  /// every observation lands in exactly one bucket. A restored histogram
  /// reports the same quantiles bit-for-bit as the original; when the
  /// bucket total is zero, sum/min/max are ignored (empty histogram).
  [[nodiscard]] static Histogram restore(
      double sum, double min, double max,
      const std::vector<std::pair<std::int32_t, std::uint64_t>>& bins);

  /// Folds another histogram in: counts and buckets add, sums accumulate
  /// in argument order (this += other), min/max widen. Merging per-lane
  /// histograms in lane-index order gives one canonical result for any
  /// worker-thread count.
  void merge(const Histogram& other) noexcept;

 private:
  // Bucket i covers [2^(i-32), 2^(i-31)); values <= 0 land in bucket 0.
  [[nodiscard]] static int bucket_of(double v) noexcept;

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// One metric dimension, e.g. {"rat", "nr"} or {"cell", "72"}. Keys and
/// values must not contain '{', '}', '=' or ',' (they are embedded into the
/// canonical metric name).
using Label = std::pair<std::string_view, std::string>;

/// Canonical name for a labeled metric: `name{k1=v1,k2=v2}` with labels
/// sorted by key, so the same dimension set always produces the same
/// registry entry regardless of call-site order. Dimensional metrics are
/// plain registry entries under their canonical name — handles, snapshots
/// and the JSON emitters all work on them unchanged.
[[nodiscard]] std::string labeled(std::string_view name,
                                  std::initializer_list<Label> labels);

/// Flattened view of one metric, for reports and the JSON emitter. The
/// emitters expand one snapshot into one or more "name" / "name.max" /
/// "name.p99"-style flat keys.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram, kDigest };

  std::string name;
  Kind kind = Kind::kCounter;
  MetricClock clock = MetricClock::kSim;
  // kCounter / kGauge current value; histogram/digest mean.
  double value = 0.0;
  // kGauge high-water / kHistogram / kDigest max.
  double max = 0.0;
  // kHistogram / kDigest only.
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  // kDigest only: the finer percentile ladder reports are built from.
  double p05 = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  // Bucket payloads as sparse (key, count) pairs: kHistogram fills `bins`
  // with its non-empty log2 buckets; kDigest fills `bins`/`neg_bins` with
  // its log-gamma buckets plus `zero_count`.
  std::vector<std::pair<std::int32_t, std::uint64_t>> bins;
  std::vector<std::pair<std::int32_t, std::uint64_t>> neg_bins;
  std::uint64_t zero_count = 0;
};

/// Flattens one live metric into a MetricSnapshot — the single code path
/// both MetricsRegistry::snapshot() and the columnar result store's
/// reconstruction use, so a digest/histogram decoded from stored bucket
/// columns snapshots bit-identically to the original (same mean division,
/// same quantile walk).
[[nodiscard]] MetricSnapshot snapshot_of(const std::string& name,
                                         MetricClock clock, const Counter& c);
[[nodiscard]] MetricSnapshot snapshot_of(const std::string& name,
                                         MetricClock clock, const Gauge& g);
[[nodiscard]] MetricSnapshot snapshot_of(const std::string& name,
                                         MetricClock clock,
                                         const Histogram& h);
[[nodiscard]] MetricSnapshot snapshot_of(const std::string& name,
                                         MetricClock clock, const Digest& d);

/// The deterministic order MetricsRegistry::snapshot() returns: by name,
/// kind breaking ties. Reconstruction paths sort with the same comparator
/// so rebuilt snapshot vectors are element-for-element identical.
void sort_snapshots(std::vector<MetricSnapshot>* snaps);

/// Registry of named metrics for one experiment run. Handle references stay
/// valid for the registry's lifetime (node-based storage). Single-threaded
/// by design: each experiment worker owns its own registry, which is what
/// keeps kSim metrics deterministic without atomics.
class MetricsRegistry {
 public:
  /// Finds or creates. The clock domain is fixed on first use; later calls
  /// with a different clock keep the original (first writer wins).
  Counter& counter(std::string_view name,
                   MetricClock clock = MetricClock::kSim);
  Gauge& gauge(std::string_view name, MetricClock clock = MetricClock::kSim);
  Histogram& histogram(std::string_view name,
                       MetricClock clock = MetricClock::kSim);
  Digest& digest(std::string_view name, MetricClock clock = MetricClock::kSim);

  /// Dimensional variants: `counter("x", {{"rat", "nr"}})` is exactly
  /// `counter(labeled("x", {{"rat", "nr"}}))`. Fetch handles once per
  /// label combination — the canonical-name build allocates.
  Counter& counter(std::string_view name, std::initializer_list<Label> labels,
                   MetricClock clock = MetricClock::kSim) {
    return counter(labeled(name, labels), clock);
  }
  Gauge& gauge(std::string_view name, std::initializer_list<Label> labels,
               MetricClock clock = MetricClock::kSim) {
    return gauge(labeled(name, labels), clock);
  }
  Histogram& histogram(std::string_view name,
                       std::initializer_list<Label> labels,
                       MetricClock clock = MetricClock::kSim) {
    return histogram(labeled(name, labels), clock);
  }
  Digest& digest(std::string_view name, std::initializer_list<Label> labels,
                 MetricClock clock = MetricClock::kSim) {
    return digest(labeled(name, labels), clock);
  }

  /// All metrics of one clock domain, sorted by (name, kind) so reports and
  /// JSON are byte-stable.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot(MetricClock clock) const;

  /// Folds every metric of `other` into this registry, creating entries as
  /// needed (new entries keep the source's clock; existing entries keep
  /// their own, first-writer-wins like find-or-create). Counters and
  /// histogram/digest buckets add; gauges take the source value and widen
  /// their high-water mark. sim::ParSim merges per-lane registries in
  /// lane-index order, so the result is a pure function of lane contents,
  /// never of thread scheduling.
  void merge_from(const MetricsRegistry& other);

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size() +
           digests_.size();
  }

 private:
  template <typename T>
  struct Slot {
    T metric;
    MetricClock clock;
  };

  // std::map: stable node addresses across inserts (handles are cached by
  // the instrumented layers).
  std::map<std::string, Slot<Counter>, std::less<>> counters_;
  std::map<std::string, Slot<Gauge>, std::less<>> gauges_;
  std::map<std::string, Slot<Histogram>, std::less<>> histograms_;
  std::map<std::string, Slot<Digest>, std::less<>> digests_;
};

}  // namespace fiveg::obs

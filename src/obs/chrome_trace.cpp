#include "obs/chrome_trace.h"

#include <map>
#include <ostream>

#include "measure/json.h"

namespace fiveg::obs {

namespace {

using measure::JsonWriter;

// Simulated nanoseconds -> trace-viewer microseconds.
double to_trace_ts(sim::Time at) { return static_cast<double>(at) / 1000.0; }

const char* phase_str(TraceEvent::Phase phase) {
  switch (phase) {
    case TraceEvent::Phase::kBegin:
      return "B";
    case TraceEvent::Phase::kEnd:
      return "E";
    case TraceEvent::Phase::kInstant:
      return "i";
    case TraceEvent::Phase::kCounter:
      return "C";
  }
  return "i";
}

void write_metadata(JsonWriter& w, const char* what, int pid, int tid,
                    std::string_view value) {
  w.begin_object();
  w.kv("name", what);
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.key("args");
  w.begin_object();
  w.kv("name", value);
  w.end_object();
  w.end_object();
}

void write_process(JsonWriter& w, const ChromeProcess& process, int pid) {
  write_metadata(w, "process_name", pid, 0, process.name);
  if (process.tracer == nullptr) return;

  // One viewer thread per layer category, tids assigned in sorted-name
  // order so the document is byte-stable.
  std::map<std::string, int> tids;
  process.tracer->for_each(
      [&tids](const TraceEvent& e) { tids.emplace(e.cat, 0); });
  int next_tid = 1;
  for (auto& [cat, tid] : tids) {
    tid = next_tid++;
    write_metadata(w, "thread_name", pid, tid, cat);
  }

  process.tracer->for_each([&](const TraceEvent& e) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("cat", e.cat);
    w.kv("ph", phase_str(e.phase));
    w.kv("ts", to_trace_ts(e.at));
    w.kv("pid", pid);
    w.kv("tid", tids.at(e.cat));
    if (e.phase == TraceEvent::Phase::kInstant) w.kv("s", "t");
    if (e.phase == TraceEvent::Phase::kCounter) {
      w.key("args");
      w.begin_object();
      w.kv("value", e.value);
      w.end_object();
    } else if (!e.args.empty()) {
      w.key("args");
      w.begin_object();
      for (const auto& [k, v] : e.args) w.kv(k, v);
      w.end_object();
    }
    w.end_object();
  });
}

}  // namespace

void write_chrome_trace(const std::vector<ChromeProcess>& processes,
                        std::ostream& os, const ChromeTraceOptions& options) {
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t i = 0; i < processes.size(); ++i) {
    write_process(w, processes[i], static_cast<int>(i));
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("exporter", "fiveg::obs");
  // Ring-buffer accounting is simulated-deterministic; wall clock is not.
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
  for (const ChromeProcess& p : processes) {
    if (p.tracer == nullptr) continue;
    emitted += p.tracer->emitted();
    dropped += p.tracer->dropped();
  }
  w.kv("events_emitted", emitted);
  w.kv("events_dropped", dropped);
  if (options.include_wall) {
    w.key("wall_ms");
    w.begin_object();
    for (const ChromeProcess& p : processes) w.kv(p.name, p.wall_ms);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

void write_chrome_trace(const Tracer& tracer, std::ostream& os,
                        const ChromeTraceOptions& options) {
  write_chrome_trace({ChromeProcess{"fiveg", &tracer, 0.0}}, os, options);
}

}  // namespace fiveg::obs

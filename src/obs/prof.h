// Execution-domain self-profiler (fiveg::obs::prof): where the rest of
// fiveg::obs observes the *simulated* network on the sim clock, this module
// observes the simulator process itself — wall-clock phase timing
// (construct / simulate / report), peak-RSS sampling, event-churn and
// allocation counters, and the per-event-label wall-time attribution table
// built on the labeled schedule_at/in seam.
//
// Every profiler metric lives in the kWall clock domain, even the ones that
// happen to be deterministic (event churn): the deterministic kSim
// `counters` object — and therefore every committed golden — never changes
// shape because profiling was on. With no obs::Scope installed the profiler
// costs nothing (the same disabled path BENCH_obs.json guards).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace fiveg::obs::prof {

/// Canonical metric-name prefixes the profiler writes and the aggregation
/// helpers below read back out of a kWall snapshot.
inline constexpr const char* kPhasePrefix = "prof.phase_ms.";
inline constexpr const char* kLabelPrefix = "sim.callback_wall_us.";
inline constexpr const char* kPeakRssMetric = "prof.peak_rss_kb";
inline constexpr const char* kScheduledMetric = "prof.events_scheduled";
inline constexpr const char* kCancelledMetric = "prof.events_cancelled";
inline constexpr const char* kHeapAllocMetric = "prof.callable_heap_allocs";

/// Process peak resident set size in kB (Linux VmHWM via getrusage);
/// 0 when the platform cannot report it. Process-wide: under --jobs N the
/// high-water mark belongs to the whole worker pool, not one run — the
/// per-run ledger field records the mark at run completion time.
[[nodiscard]] std::uint64_t peak_rss_kb();

/// Instantaneous resident set size in kB (/proc/self/statm); 0 when
/// unavailable.
[[nodiscard]] std::uint64_t current_rss_kb();

/// RAII wall-clock phase timer: observes the elapsed milliseconds into the
/// current scope's kWall histogram `prof.phase_ms.<phase>` on destruction.
/// With no metrics scope installed, construction is a thread-local load and
/// destruction a null check. `phase` must outlive the object (string
/// literals, in practice).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* phase);
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase();

 private:
  Histogram* hist_ = nullptr;  // null when no scope was installed
  std::chrono::steady_clock::time_point start_;
};

/// One row of the per-phase wall-time table.
struct PhaseRow {
  std::string phase;     // "construct", "simulate", "report", ...
  std::uint64_t count = 0;  // times the phase was entered
  double total_ms = 0.0;
};

/// One row of the per-event-label wall-time attribution table.
struct LabelRow {
  std::string label;        // e.g. "tcp.rto", "net.link_tx"
  std::uint64_t events = 0;
  double total_ms = 0.0;
  double mean_us = 0.0;
};

/// Extracts the `prof.phase_ms.*` histograms from a kWall snapshot,
/// sorted by total wall time (descending).
[[nodiscard]] std::vector<PhaseRow> phase_rows(
    const std::vector<MetricSnapshot>& wall);

/// Extracts the `sim.callback_wall_us.<label>` histograms from a kWall
/// snapshot into the attribution table, sorted by total wall time
/// (descending). This is "where does wall time go" per run.
[[nodiscard]] std::vector<LabelRow> label_rows(
    const std::vector<MetricSnapshot>& wall);

/// Compact per-run profile summary (the ledger's `prof` object).
struct Summary {
  double construct_ms = 0.0;
  double simulate_ms = 0.0;
  double report_ms = 0.0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t peak_rss_kb = 0;
  std::string top_label;  // hottest event label by wall time; "" if none
  double top_label_ms = 0.0;
};

/// Builds the summary from a kWall snapshot (as captured into
/// ExperimentResult::profile).
[[nodiscard]] Summary summarize(const std::vector<MetricSnapshot>& wall);

}  // namespace fiveg::obs::prof

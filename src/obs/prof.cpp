#include "obs/prof.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/obs.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace fiveg::obs::prof {

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
  // Linux reports ru_maxrss in kB already.
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_kb() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::uint64_t>(resident) *
         static_cast<std::uint64_t>(page) / 1024;
#else
  return 0;
#endif
}

ScopedPhase::ScopedPhase(const char* phase) {
  MetricsRegistry* m = metrics();
  if (m == nullptr) return;
  std::string name = kPhasePrefix;
  name += phase;
  hist_ = &m->histogram(name, MetricClock::kWall);
  start_ = std::chrono::steady_clock::now();
}

ScopedPhase::~ScopedPhase() {
  if (hist_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  hist_->observe(
      std::chrono::duration<double, std::milli>(elapsed).count());
}

namespace {

/// Histogram snapshots whose name starts with `prefix`, as (suffix, snap).
template <typename Fn>
void for_each_with_prefix(const std::vector<MetricSnapshot>& wall,
                          const char* prefix, Fn&& fn) {
  const std::size_t len = std::strlen(prefix);
  for (const MetricSnapshot& s : wall) {
    if (s.kind != MetricSnapshot::Kind::kHistogram) continue;
    if (s.name.compare(0, len, prefix) != 0) continue;
    fn(s.name.substr(len), s);
  }
}

std::uint64_t counter_value(const std::vector<MetricSnapshot>& wall,
                            const char* name) {
  for (const MetricSnapshot& s : wall) {
    if (s.kind == MetricSnapshot::Kind::kCounter && s.name == name) {
      return static_cast<std::uint64_t>(s.value);
    }
  }
  return 0;
}

double gauge_value(const std::vector<MetricSnapshot>& wall,
                   const char* name) {
  for (const MetricSnapshot& s : wall) {
    if (s.kind == MetricSnapshot::Kind::kGauge && s.name == name) {
      return s.value;
    }
  }
  return 0.0;
}

}  // namespace

std::vector<PhaseRow> phase_rows(const std::vector<MetricSnapshot>& wall) {
  std::vector<PhaseRow> rows;
  for_each_with_prefix(wall, kPhasePrefix,
                       [&rows](std::string phase, const MetricSnapshot& s) {
                         PhaseRow row;
                         row.phase = std::move(phase);
                         row.count = s.count;
                         row.total_ms = s.sum;
                         rows.push_back(std::move(row));
                       });
  std::sort(rows.begin(), rows.end(), [](const PhaseRow& a, const PhaseRow& b) {
    if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
    return a.phase < b.phase;
  });
  return rows;
}

std::vector<LabelRow> label_rows(const std::vector<MetricSnapshot>& wall) {
  std::vector<LabelRow> rows;
  for_each_with_prefix(wall, kLabelPrefix,
                       [&rows](std::string label, const MetricSnapshot& s) {
                         LabelRow row;
                         row.label = std::move(label);
                         row.events = s.count;
                         row.total_ms = s.sum / 1000.0;
                         row.mean_us = s.count > 0 ? s.sum / static_cast<double>(
                                                                s.count)
                                                   : 0.0;
                         rows.push_back(std::move(row));
                       });
  std::sort(rows.begin(), rows.end(), [](const LabelRow& a, const LabelRow& b) {
    if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
    return a.label < b.label;
  });
  return rows;
}

Summary summarize(const std::vector<MetricSnapshot>& wall) {
  Summary out;
  for (const PhaseRow& row : phase_rows(wall)) {
    if (row.phase == "construct") out.construct_ms = row.total_ms;
    if (row.phase == "simulate") out.simulate_ms = row.total_ms;
    if (row.phase == "report") out.report_ms = row.total_ms;
  }
  out.events_scheduled = counter_value(wall, kScheduledMetric);
  out.events_cancelled = counter_value(wall, kCancelledMetric);
  out.heap_allocs = counter_value(wall, kHeapAllocMetric);
  out.peak_rss_kb = static_cast<std::uint64_t>(gauge_value(wall, kPeakRssMetric));
  const std::vector<LabelRow> labels = label_rows(wall);
  if (!labels.empty()) {
    out.top_label = labels.front().label;
    out.top_label_ms = labels.front().total_ms;
  }
  return out;
}

}  // namespace fiveg::obs::prof

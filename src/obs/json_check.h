// A small strict JSON parser used to validate what the observability layer
// emits: tests parse Chrome traces back (escaping, structure) and the
// fiveg_trace_check CLI gates trace artifacts in CI. Deliberately minimal —
// full DOM, no streaming — because trace files in the smoke tier are small.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fiveg::obs {

/// Parsed JSON value (strict RFC 8259 subset: no comments, no trailing
/// commas; \uXXXX escapes are decoded to UTF-8).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is(Type t) const noexcept { return type == t; }
  /// Object member lookup; null if absent or not an object.
  [[nodiscard]] const JsonValue* get(const std::string& key) const;
};

/// Parses `text` as one JSON document. Returns null on error and, when
/// `error` is given, fills it with a message including the byte offset.
[[nodiscard]] std::unique_ptr<JsonValue> json_parse(std::string_view text,
                                                    std::string* error = nullptr);

/// True iff `text` is a complete, valid JSON document.
[[nodiscard]] bool json_valid(std::string_view text,
                              std::string* error = nullptr);

/// Structural validation of a Chrome trace_event document.
struct TraceCheck {
  bool ok = false;
  std::string error;  // first failure, empty when ok
  std::uint64_t event_count = 0;       // non-metadata trace events
  std::vector<std::string> categories; // distinct "cat" values, sorted
  std::vector<std::string> processes;  // process_name metadata values, sorted
  // Ring-buffer truncation accounting from otherData: events lost to
  // wraparound across all processes. Reported, never a failure — a wrapped
  // ring is a capacity decision, not a malformed trace.
  std::uint64_t dropped_events = 0;
};

/// Parses and validates: top-level object, "traceEvents" array, every event
/// an object with string "ph" and the fields each phase requires. Also
/// enforces counter ('C') sample time-monotonicity per (pid, tid, name)
/// track and uniqueness of process_name / thread_name metadata per target.
[[nodiscard]] TraceCheck check_chrome_trace(std::string_view text);

/// Convenience: reads the whole stream, then checks.
[[nodiscard]] TraceCheck check_chrome_trace(std::istream& is);

}  // namespace fiveg::obs

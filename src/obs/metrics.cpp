#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace fiveg::obs {

std::string labeled(std::string_view name,
                    std::initializer_list<Label> labels) {
  // No labels -> the plain name: "x" and labeled("x", {}) must be the
  // same series, not "x" vs "x{}".
  if (labels.size() == 0) return std::string(name);
  std::vector<const Label*> sorted;
  sorted.reserve(labels.size());
  for (const Label& l : labels) sorted.push_back(&l);
  std::sort(sorted.begin(), sorted.end(),
            [](const Label* a, const Label* b) { return a->first < b->first; });
  std::string out(name);
  out += '{';
  bool first = true;
  for (const Label* l : sorted) {
    if (!first) out += ',';
    first = false;
    out += l->first;
    out += '=';
    out += l->second;
  }
  out += '}';
  return out;
}

int Histogram::bucket_of(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN
  int exp = 0;
  (void)std::frexp(v, &exp);           // v = m * 2^exp, m in [0.5, 1)
  const int idx = exp + 31;            // [2^-32, 2^-31) -> bucket 0
  if (idx < 0) return 0;
  if (idx >= kBuckets) return kBuckets - 1;
  return idx;
}

void Histogram::observe(double v) noexcept {
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++buckets_[static_cast<std::size_t>(bucket_of(v))];
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen > rank) {
      // Upper bound of bucket i, clamped into the observed range.
      const double ub = std::ldexp(1.0, i - 31);
      return ub > max_ ? max_ : (ub < min_ ? min_ : ub);
    }
  }
  return max();
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

Histogram Histogram::restore(
    double sum, double min, double max,
    const std::vector<std::pair<std::int32_t, std::uint64_t>>& bins) {
  Histogram h;
  for (const auto& [key, count] : bins) {
    if (key < 0 || key >= kBuckets) continue;
    h.buckets_[static_cast<std::size_t>(key)] = count;
    h.count_ += count;
  }
  if (h.count_ > 0) {
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
  }
  return h;
}

MetricSnapshot snapshot_of(const std::string& name, MetricClock clock,
                           const Counter& c) {
  MetricSnapshot s;
  s.name = name;
  s.kind = MetricSnapshot::Kind::kCounter;
  s.clock = clock;
  s.value = static_cast<double>(c.value());
  s.count = c.value();
  return s;
}

MetricSnapshot snapshot_of(const std::string& name, MetricClock clock,
                           const Gauge& g) {
  MetricSnapshot s;
  s.name = name;
  s.kind = MetricSnapshot::Kind::kGauge;
  s.clock = clock;
  s.value = g.value();
  s.max = g.max();
  return s;
}

MetricSnapshot snapshot_of(const std::string& name, MetricClock clock,
                           const Histogram& h) {
  MetricSnapshot s;
  s.name = name;
  s.kind = MetricSnapshot::Kind::kHistogram;
  s.clock = clock;
  s.value = h.mean();
  s.max = h.max();
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.min();
  s.p50 = h.quantile(0.50);
  s.p99 = h.quantile(0.99);
  const auto& buckets = h.buckets();
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t c = buckets[static_cast<std::size_t>(i)];
    if (c != 0) s.bins.emplace_back(i, c);
  }
  return s;
}

MetricSnapshot snapshot_of(const std::string& name, MetricClock clock,
                           const Digest& d) {
  MetricSnapshot s;
  s.name = name;
  s.kind = MetricSnapshot::Kind::kDigest;
  s.clock = clock;
  s.value = d.mean();
  s.count = d.count();
  s.sum = d.sum();
  s.min = d.min();
  s.max = d.max();
  s.p05 = d.quantile(0.05);
  s.p25 = d.quantile(0.25);
  s.p50 = d.quantile(0.50);
  s.p75 = d.quantile(0.75);
  s.p90 = d.quantile(0.90);
  s.p95 = d.quantile(0.95);
  s.p99 = d.quantile(0.99);
  s.zero_count = d.zero_count();
  s.bins.assign(d.positive_bins().begin(), d.positive_bins().end());
  s.neg_bins.assign(d.negative_bins().begin(), d.negative_bins().end());
  return s;
}

void sort_snapshots(std::vector<MetricSnapshot>* snaps) {
  std::sort(snaps->begin(), snaps->end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

namespace {

template <typename Map, typename Metric>
Metric& find_or_create(Map& map, std::string_view name, MetricClock clock) {
  const auto it = map.find(name);
  if (it != map.end()) return it->second.metric;
  return map.emplace(std::string(name), typename Map::mapped_type{{}, clock})
      .first->second.metric;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name, MetricClock clock) {
  return find_or_create<decltype(counters_), Counter>(counters_, name, clock);
}

Gauge& MetricsRegistry::gauge(std::string_view name, MetricClock clock) {
  return find_or_create<decltype(gauges_), Gauge>(gauges_, name, clock);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      MetricClock clock) {
  return find_or_create<decltype(histograms_), Histogram>(histograms_, name,
                                                          clock);
}

Digest& MetricsRegistry::digest(std::string_view name, MetricClock clock) {
  return find_or_create<decltype(digests_), Digest>(digests_, name, clock);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, slot] : other.counters_) {
    counter(name, slot.clock).add(slot.metric.value());
  }
  for (const auto& [name, slot] : other.gauges_) {
    gauge(name, slot.clock).merge(slot.metric);
  }
  for (const auto& [name, slot] : other.histograms_) {
    histogram(name, slot.clock).merge(slot.metric);
  }
  for (const auto& [name, slot] : other.digests_) {
    digest(name, slot.clock).merge(slot.metric);
  }
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot(
    MetricClock clock) const {
  std::vector<MetricSnapshot> out;
  out.reserve(size());
  for (const auto& [name, slot] : counters_) {
    if (slot.clock != clock) continue;
    out.push_back(snapshot_of(name, slot.clock, slot.metric));
  }
  for (const auto& [name, slot] : gauges_) {
    if (slot.clock != clock) continue;
    out.push_back(snapshot_of(name, slot.clock, slot.metric));
  }
  for (const auto& [name, slot] : histograms_) {
    if (slot.clock != clock) continue;
    out.push_back(snapshot_of(name, slot.clock, slot.metric));
  }
  for (const auto& [name, slot] : digests_) {
    if (slot.clock != clock) continue;
    out.push_back(snapshot_of(name, slot.clock, slot.metric));
  }
  // The four maps are each sorted; merge-sort the concatenation by name
  // (kind breaks ties) so the combined view is byte-stable.
  sort_snapshots(&out);
  return out;
}

}  // namespace fiveg::obs

#include "obs/obs.h"

namespace fiveg::obs {

namespace {

thread_local Scope g_scope;

}  // namespace

const Scope& current_scope() noexcept { return g_scope; }

Tracer* tracer() noexcept { return g_scope.tracer; }

MetricsRegistry* metrics() noexcept { return g_scope.metrics; }

ScopedObs::ScopedObs(Tracer* tracer, MetricsRegistry* metrics)
    : prev_(g_scope) {
  g_scope = Scope{tracer, metrics};
}

ScopedObs::~ScopedObs() { g_scope = prev_; }

}  // namespace fiveg::obs

// The per-thread observability scope. The Runner installs a Tracer and a
// MetricsRegistry for the duration of one experiment run (each worker
// thread gets its own pair, which is what keeps instrumentation both
// lock-free and deterministic); instrumented layers read the scope through
// obs::tracer()/obs::metrics() and do nothing when it is empty.
//
// The disabled path is one thread-local load plus a null check — cheap
// enough to leave instrumentation unconditionally compiled in (see
// BENCH_obs.json for the measured Simulator::run overhead).
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fiveg::obs {

/// What is installed on the current thread. Both pointers may be null
/// independently (e.g. metrics collection without tracing).
struct Scope {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// The current thread's scope (empty by default).
[[nodiscard]] const Scope& current_scope() noexcept;

/// Shorthands; null when nothing is installed.
[[nodiscard]] Tracer* tracer() noexcept;
[[nodiscard]] MetricsRegistry* metrics() noexcept;

/// RAII installer: swaps the thread's scope in, restores the previous one
/// on destruction (nests correctly).
class ScopedObs {
 public:
  ScopedObs(Tracer* tracer, MetricsRegistry* metrics);
  ScopedObs(const ScopedObs&) = delete;
  ScopedObs& operator=(const ScopedObs&) = delete;
  ~ScopedObs();

 private:
  Scope prev_;
};

}  // namespace fiveg::obs

#include "obs/codec.h"

#include <cstring>
#include <map>
#include <utility>

namespace fiveg::obs::codec {

namespace {

std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// Shared by the digest and histogram encoders: a sparse (key, count) bin
// list with zigzag keys, emitted in the order given (the callers iterate
// ordered maps / pre-sorted snapshot vectors, so the wire order is
// canonical and encode∘decode is a fixed point).
void put_bins(std::string* out,
              const std::vector<std::pair<std::int32_t, std::uint64_t>>&
                  bins) {
  put_varint(out, bins.size());
  for (const auto& [key, count] : bins) {
    put_svarint(out, key);
    put_varint(out, count);
  }
}

// Decodes a bin list into an ordered map. Strictly ascending keys and
// nonzero counts are required: that is the only form a live digest or
// histogram can export, so anything else is corruption.
bool get_bins(Reader* r, std::map<std::int32_t, std::uint64_t>* out) {
  std::uint64_t n = 0;
  if (!r->get_varint(&n)) return false;
  bool first = true;
  std::int32_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t key = 0;
    std::uint64_t count = 0;
    if (!r->get_svarint(&key) || !r->get_varint(&count)) return false;
    if (count == 0) return false;
    if (key < INT32_MIN || key > INT32_MAX) return false;
    const auto k = static_cast<std::int32_t>(key);
    if (!first && k <= prev) return false;
    first = false;
    prev = k;
    out->emplace(k, count);
  }
  return true;
}

}  // namespace

void put_varint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void put_svarint(std::string* out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

void put_f64(std::string* out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

void put_string(std::string* out, std::string_view s) {
  put_varint(out, s.size());
  out->append(s.data(), s.size());
}

bool Reader::get_varint(std::uint64_t* v) {
  if (!ok_) return false;
  std::uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) return fail();
    const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical encodings that overflow 64 bits.
      if (shift == 63 && (byte & 0x7e) != 0) return fail();
      *v = result;
      return true;
    }
  }
  return fail();
}

bool Reader::get_svarint(std::int64_t* v) {
  std::uint64_t raw = 0;
  if (!get_varint(&raw)) return false;
  *v = unzigzag(raw);
  return true;
}

bool Reader::get_f64(double* v) {
  if (!ok_) return false;
  if (data_.size() - pos_ < 8) return fail();
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(
                                                           i)]))
            << (8 * i);
  }
  pos_ += 8;
  std::memcpy(v, &bits, sizeof *v);
  return true;
}

bool Reader::get_string(std::string* s) {
  std::uint64_t len = 0;
  if (!get_varint(&len)) return false;
  if (len > data_.size() - pos_) return fail();
  s->assign(data_.data() + pos_, static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return true;
}

bool Reader::get_byte(std::uint8_t* b) {
  if (!ok_) return false;
  if (pos_ >= data_.size()) return fail();
  *b = static_cast<std::uint8_t>(data_[pos_++]);
  return true;
}

void encode_digest(std::string* out, const Digest& d) {
  put_varint(out, d.zero_count());
  put_f64(out, d.sum());
  put_f64(out, d.min());
  put_f64(out, d.max());
  std::vector<std::pair<std::int32_t, std::uint64_t>> bins(
      d.positive_bins().begin(), d.positive_bins().end());
  put_bins(out, bins);
  bins.assign(d.negative_bins().begin(), d.negative_bins().end());
  put_bins(out, bins);
}

bool decode_digest(Reader* r, Digest* out) {
  std::uint64_t zero = 0;
  double sum = 0, min = 0, max = 0;
  if (!r->get_varint(&zero) || !r->get_f64(&sum) || !r->get_f64(&min) ||
      !r->get_f64(&max)) {
    return false;
  }
  std::map<std::int32_t, std::uint64_t> pos;
  std::map<std::int32_t, std::uint64_t> neg;
  if (!get_bins(r, &pos) || !get_bins(r, &neg)) return false;
  *out = Digest::restore(zero, sum, min, max, std::move(pos), std::move(neg));
  return true;
}

void encode_histogram(std::string* out, const Histogram& h) {
  put_f64(out, h.sum());
  put_f64(out, h.min());
  put_f64(out, h.max());
  std::vector<std::pair<std::int32_t, std::uint64_t>> bins;
  const auto& buckets = h.buckets();
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t c = buckets[static_cast<std::size_t>(i)];
    if (c != 0) bins.emplace_back(i, c);
  }
  put_bins(out, bins);
}

bool decode_histogram(Reader* r, Histogram* out) {
  double sum = 0, min = 0, max = 0;
  if (!r->get_f64(&sum) || !r->get_f64(&min) || !r->get_f64(&max)) {
    return false;
  }
  std::map<std::int32_t, std::uint64_t> bins;
  if (!get_bins(r, &bins)) return false;
  std::vector<std::pair<std::int32_t, std::uint64_t>> sparse;
  sparse.reserve(bins.size());
  for (const auto& [key, count] : bins) {
    if (key < 0 || key >= Histogram::kBuckets) return false;
    sparse.emplace_back(key, count);
  }
  *out = Histogram::restore(sum, min, max, sparse);
  return true;
}

void encode_snapshots(std::string* out,
                      const std::vector<MetricSnapshot>& snaps,
                      const StringIntern& intern) {
  // Column blocks per kind; within a block the input's (name, kind) sort
  // order is preserved, so each block is name-sorted on its own.
  using Kind = MetricSnapshot::Kind;
  const auto of_kind = [&snaps](Kind kind) {
    std::vector<const MetricSnapshot*> out_snaps;
    for (const MetricSnapshot& s : snaps) {
      if (s.kind == kind) out_snaps.push_back(&s);
    }
    return out_snaps;
  };

  const auto counters = of_kind(Kind::kCounter);
  put_varint(out, counters.size());
  for (const MetricSnapshot* s : counters) {
    put_varint(out, intern(s->name));
    put_varint(out, s->count);
  }

  const auto gauges = of_kind(Kind::kGauge);
  put_varint(out, gauges.size());
  for (const MetricSnapshot* s : gauges) {
    put_varint(out, intern(s->name));
    put_f64(out, s->value);
    put_f64(out, s->max);
  }

  const auto hists = of_kind(Kind::kHistogram);
  put_varint(out, hists.size());
  for (const MetricSnapshot* s : hists) {
    put_varint(out, intern(s->name));
    put_f64(out, s->sum);
    put_f64(out, s->min);
    put_f64(out, s->max);
    put_bins(out, s->bins);
  }

  const auto digests = of_kind(Kind::kDigest);
  put_varint(out, digests.size());
  for (const MetricSnapshot* s : digests) {
    put_varint(out, intern(s->name));
    put_varint(out, s->zero_count);
    put_f64(out, s->sum);
    put_f64(out, s->min);
    put_f64(out, s->max);
    put_bins(out, s->bins);
    put_bins(out, s->neg_bins);
  }
}

bool decode_snapshots(Reader* r, MetricClock clock,
                      const StringResolve& resolve,
                      std::vector<MetricSnapshot>* out) {
  const auto get_name = [&](std::string* name) {
    std::uint64_t id = 0;
    return r->get_varint(&id) && resolve(id, name);
  };

  std::uint64_t n = 0;
  if (!r->get_varint(&n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!get_name(&name) || !r->get_varint(&value)) return false;
    Counter c;
    c.add(value);
    out->push_back(snapshot_of(name, clock, c));
  }

  if (!r->get_varint(&n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    double value = 0, max = 0;
    if (!get_name(&name) || !r->get_f64(&value) || !r->get_f64(&max)) {
      return false;
    }
    // Gauges have no derivable state: rebuild the snapshot directly (the
    // high-water mark of a restored gauge object could not distinguish
    // "never set" from "max 0", but the snapshot carries the flat fields).
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.clock = clock;
    s.value = value;
    s.max = max;
    out->push_back(std::move(s));
  }

  if (!r->get_varint(&n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    double sum = 0, min = 0, max = 0;
    if (!get_name(&name) || !r->get_f64(&sum) || !r->get_f64(&min) ||
        !r->get_f64(&max)) {
      return false;
    }
    std::map<std::int32_t, std::uint64_t> bins;
    if (!get_bins(r, &bins)) return false;
    std::vector<std::pair<std::int32_t, std::uint64_t>> sparse;
    sparse.reserve(bins.size());
    for (const auto& [key, count] : bins) {
      if (key < 0 || key >= Histogram::kBuckets) return false;
      sparse.emplace_back(key, count);
    }
    out->push_back(
        snapshot_of(name, clock, Histogram::restore(sum, min, max, sparse)));
  }

  if (!r->get_varint(&n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t zero = 0;
    double sum = 0, min = 0, max = 0;
    if (!get_name(&name) || !r->get_varint(&zero) || !r->get_f64(&sum) ||
        !r->get_f64(&min) || !r->get_f64(&max)) {
      return false;
    }
    std::map<std::int32_t, std::uint64_t> pos;
    std::map<std::int32_t, std::uint64_t> neg;
    if (!get_bins(r, &pos) || !get_bins(r, &neg)) return false;
    out->push_back(snapshot_of(
        name, clock,
        Digest::restore(zero, sum, min, max, std::move(pos), std::move(neg))));
  }

  sort_snapshots(out);
  return true;
}

}  // namespace fiveg::obs::codec

#include "tcp/tcp_receiver.h"

#include <utility>

namespace fiveg::tcp {

TcpReceiver::TcpReceiver(sim::Simulator* simulator, TcpConfig config,
                         std::uint32_t flow_id,
                         std::function<void(net::Packet)> emit_ack)
    : sim_(simulator),
      config_(config),
      flow_id_(flow_id),
      emit_ack_(std::move(emit_ack)) {}

void TcpReceiver::deliver(net::Packet p) {
  if (p.flow_id != flow_id_ || p.is_ack) return;

  const std::uint64_t seg_start = p.seq;
  const std::uint64_t payload = p.size_bytes > config_.header_bytes
                                    ? p.size_bytes - config_.header_bytes
                                    : 0;
  const std::uint64_t before = cum_ack_;
  if (seg_start == cum_ack_) {
    cum_ack_ += payload;
    total_accepted_ += payload;
    // Drain any buffered segments that are now contiguous.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && it->first <= cum_ack_) {
      if (it->first == cum_ack_) cum_ack_ += it->second;
      it = out_of_order_.erase(it);
    }
  } else if (seg_start > cum_ack_) {
    if (out_of_order_.emplace(seg_start, payload).second) {
      total_accepted_ += payload;
    }
  }  // else: duplicate of already-delivered data; just re-ACK

  if (cum_ack_ > before) {
    goodput_log_.add(sim_->now(), 8.0 * static_cast<double>(cum_ack_ - before));
  }

  highest_held_ = std::max({highest_held_, cum_ack_, seg_start + payload});

  net::Packet ack;
  ack.flow_id = flow_id_;
  ack.is_ack = true;
  ack.ack_seq = cum_ack_;
  ack.sack_high = highest_held_;  // compact SACK: the top of the scoreboard
  ack.rcv_total = total_accepted_;  // smooth "delivered" signal for rate sampling
  ack.size_bytes = 40;
  ack.sent_at = sim_->now();
  ack.echo_ts = p.sent_at;  // timestamp echo for the sender's RTT sample
  // ECN echo: a CE-marked arrival is reported back on its own ACK
  // (DCTCP-style per-packet echo; the sender applies the once-per-RTT
  // gate). Only an ECN-negotiated receiver echoes.
  ack.ece = config_.ecn && p.ce;
  if (ack.ece) ++ce_marks_seen_;
  emit_ack_(std::move(ack));
}

double TcpReceiver::mean_goodput_bps(sim::Time from, sim::Time to) const {
  if (to <= from) return 0.0;
  double bits = 0.0;
  for (const measure::TimePoint& pt : goodput_log_.points()) {
    if (pt.at >= from && pt.at <= to) bits += pt.value;
  }
  return bits / sim::to_seconds(to - from);
}

}  // namespace fiveg::tcp

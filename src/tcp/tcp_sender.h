// TCP sender: cumulative-ACK NewReno-style loss recovery (fast retransmit
// on triple dupack, go-back-N on RTO), RFC 6298 timers, delivery-rate
// sampling for BBR, and optional pacing. Runs bulk (iperf-style) or
// fixed-size (web object) transfers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "fault/fault.h"
#include "measure/timeseries.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/congestion_control.h"
#include "tcp/rtt_estimator.h"
#include "tcp/tcp_endpoint.h"

namespace fiveg::tcp {

/// Sending endpoint of one flow.
class TcpSender final : public net::PacketSink {
 public:
  /// `emit` injects data packets toward the receiver.
  TcpSender(sim::Simulator* simulator, TcpConfig config, std::uint32_t flow_id,
            std::function<void(net::Packet)> emit);

  /// Starts an unbounded bulk transfer (iperf3).
  void start_bulk();

  /// Queues `bytes` of application data; `done` fires when everything
  /// queued so far (including this chunk) is ACKed. May be called
  /// repeatedly — each chunk keeps its own completion callback, so a
  /// frame-by-frame video source can track per-frame delivery.
  void send_bytes(std::uint64_t bytes, std::function<void()> done = nullptr);

  /// ACK input (attach as the sink of the reverse path).
  void deliver(net::Packet p) override;

  // --- observability ---
  [[nodiscard]] double cwnd_bytes() const { return cc_->cwnd_bytes(); }
  [[nodiscard]] const measure::TimeSeries& cwnd_log() const noexcept {
    return cwnd_log_;
  }
  [[nodiscard]] std::uint64_t bytes_acked() const noexcept { return snd_una_; }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] std::uint64_t fast_recoveries() const noexcept {
    return fast_recoveries_;
  }
  /// How many times the flow backed off to an ECN echo (at most once per
  /// RTT, regardless of how many ACKs carried ECE).
  [[nodiscard]] std::uint64_t ecn_responses() const noexcept {
    return ecn_responses_;
  }
  /// High-water mark of bytes ever sent (fault::InvariantChecker compares
  /// it against the receiver's accounting: no delivery without a send).
  [[nodiscard]] std::uint64_t max_sent_seq() const noexcept {
    return max_sent_seq_;
  }
  [[nodiscard]] const TcpConfig& config() const noexcept { return config_; }
  [[nodiscard]] const RttEstimator& rtt() const noexcept { return rtt_; }
  [[nodiscard]] const CongestionControl& cc() const noexcept { return *cc_; }
  [[nodiscard]] std::uint64_t bytes_in_flight() const noexcept {
    return snd_nxt_ - snd_una_;
  }
  /// Queued + unacknowledged application bytes (the sender-side backlog an
  /// adaptive video source watches).
  [[nodiscard]] std::uint64_t backlog_bytes() const noexcept {
    return app_limit_ - snd_una_;
  }

 private:
  // Per-segment state for RFC-style delivery-rate estimation: each segment
  // snapshots the connection's rate-sample anchors at (re)send time.
  struct SegmentRecord {
    std::uint64_t seq;        // payload byte offset
    std::uint32_t payload;    // payload bytes
    sim::Time sent_at;
    std::uint64_t delivered_at_send;   // cumulative delivered when sent
    sim::Time delivered_time_at_send;  // when that delivered count was set
    sim::Time first_sent_at_send;      // send time of the anchoring packet
    bool retransmitted = false;
  };

  void try_send();
  void send_segment(std::uint64_t seq, bool retransmit);
  void on_ack(const net::Packet& ack);
  void enter_fast_retransmit();
  void retransmit_holes();
  void on_rto();
  void arm_rto();
  [[nodiscard]] std::uint64_t effective_window() const;
  [[nodiscard]] bool data_available(std::uint64_t seq) const;
  void maybe_complete();
  // Appends to cwnd_log_ and, when tracing, samples the per-flow cwnd
  // counter track and flags the slow-start exit.
  void log_cwnd();

  sim::Simulator* sim_;
  TcpConfig config_;
  std::uint32_t flow_id_;
  std::function<void(net::Packet)> emit_;
  std::unique_ptr<CongestionControl> cc_;
  RttEstimator rtt_;

  bool bulk_ = false;
  std::uint64_t app_limit_ = 0;  // total bytes the app has queued
  // (completion threshold, callback) in queueing order.
  std::deque<std::pair<std::uint64_t, std::function<void()>>> completions_;

  std::uint64_t snd_una_ = 0;  // lowest unacked byte
  std::uint64_t snd_nxt_ = 0;  // next new byte to send
  std::uint64_t max_sent_seq_ = 0;  // high-water mark of bytes ever sent
  std::uint64_t delivered_ = 0;
  sim::Time delivered_time_ = 0;  // when delivered_ last advanced
  sim::Time first_sent_time_ = 0;  // sent_at of the last acked segment
  int dupacks_ = 0;

  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  std::uint64_t sack_high_ = 0;  // receiver scoreboard top from ACKs
  std::uint64_t retx_next_ = 0;  // next hole candidate this recovery epoch
  sim::Time sweep_start_ = 0;    // when the current hole sweep began

  std::deque<SegmentRecord> in_flight_;  // ordered by seq

  std::optional<sim::EventId> rto_timer_;
  sim::Time next_send_time_ = 0;  // pacing release time
  bool pace_timer_pending_ = false;  // single-flight pacing wake-up

  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t fast_recoveries_ = 0;
  measure::TimeSeries cwnd_log_;

  // ECN response gate (RFC 3168 §6.1.2 shape): after reacting to an ECE,
  // further echoes are ignored until this sequence point is acked — i.e.
  // at most one window reduction per RTT.
  std::uint64_t ecn_cwr_point_ = 0;
  std::uint64_t ecn_responses_ = 0;

  // Server-stall fault injection (null unless a plan with a server_stall
  // window is installed at construction). While stalled, no *new* data is
  // clocked out — retransmissions and ACK processing continue, like a
  // sender whose application stopped writing.
  fault::Runtime* fault_ = nullptr;
  bool stall_poll_pending_ = false;  // single-flight resume wake-up

  // Observability handles, resolved once at construction (null without a
  // scope on the constructing thread).
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* retx_ctr_ = nullptr;
  obs::Counter* loss_ctr_ = nullptr;
  obs::Counter* timeout_ctr_ = nullptr;
  obs::Counter* ecn_ctr_ = nullptr;  // only created for ECN-enabled flows
  obs::Digest* rtt_d_ = nullptr;
  obs::Digest* rate_d_ = nullptr;
  std::string cwnd_track_;       // per-flow counter-track name
  double last_cwnd_traced_ = -1.0;
  bool was_slow_start_ = true;
};

}  // namespace fiveg::tcp

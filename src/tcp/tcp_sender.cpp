#include "tcp/tcp_sender.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"

namespace fiveg::tcp {

TcpSender::TcpSender(sim::Simulator* simulator, TcpConfig config,
                     std::uint32_t flow_id,
                     std::function<void(net::Packet)> emit)
    : sim_(simulator),
      config_(config),
      flow_id_(flow_id),
      emit_(std::move(emit)),
      cc_(make_congestion_control(config.algo, config.mss_bytes, config.seed)),
      rtt_(config.min_rto, config.initial_rto) {
  tracer_ = obs::tracer();
  fault_ = fault::runtime();
  // Only the server-stall injector lives here; skip the per-send check
  // entirely for plans that never stall.
  if (fault_ != nullptr &&
      !fault_->plan().has_kind(fault::FaultKind::kServerStall)) {
    fault_ = nullptr;
  }
  if (auto* m = obs::metrics()) {
    retx_ctr_ = &m->counter("tcp.retransmissions");
    loss_ctr_ = &m->counter("tcp.loss_episodes");
    timeout_ctr_ = &m->counter("tcp.timeouts");
    const std::string algo = to_string(config.algo);
    rtt_d_ = &m->digest("tcp.rtt_ms", {{"algo", algo}});
    rate_d_ = &m->digest("tcp.delivery_rate_mbps", {{"algo", algo}});
    if (config_.ecn) {
      // Only ECN-negotiated flows grow the metric set: non-ECN runs (all
      // golden baselines) keep an identical metric universe.
      ecn_ctr_ = &m->counter("tcp.ecn_responses", {{"algo", algo}});
    }
  }
  if (tracer_ != nullptr) {
    cwnd_track_ = "tcp.cwnd.flow" + std::to_string(flow_id_);
  }
  was_slow_start_ = cc_->in_slow_start();
}

void TcpSender::log_cwnd() {
  const double cwnd = cc_->cwnd_bytes();
  cwnd_log_.add(sim_->now(), cwnd);
  if (tracer_ == nullptr) return;
  if (cwnd != last_cwnd_traced_) {
    tracer_->counter(sim_->now(), cwnd_track_, "tcp", cwnd);
    last_cwnd_traced_ = cwnd;
  }
  const bool ss = cc_->in_slow_start();
  if (was_slow_start_ && !ss) {
    tracer_->instant(sim_->now(), "tcp.slow_start_exit", "tcp",
                     {{"flow", std::to_string(flow_id_)},
                      {"cwnd_bytes", std::to_string(cwnd)}});
  }
  was_slow_start_ = ss;
}

void TcpSender::start_bulk() {
  bulk_ = true;
  try_send();
}

void TcpSender::send_bytes(std::uint64_t bytes, std::function<void()> done) {
  app_limit_ += bytes;
  if (done) completions_.emplace_back(app_limit_, std::move(done));
  try_send();
}

std::uint64_t TcpSender::effective_window() const {
  const auto cwnd = static_cast<std::uint64_t>(cc_->cwnd_bytes());
  return std::min(cwnd, config_.receive_window_bytes);
}

bool TcpSender::data_available(std::uint64_t seq) const {
  return bulk_ || seq < app_limit_;
}

void TcpSender::try_send() {
  if (fault_ != nullptr && fault_->server_stalled()) {
    // The application stopped writing: no new data until the window ends.
    // A fully-drained flow gets no more ACK pokes, so poll for the resume
    // (single-flight, like the pacing timer).
    if (!stall_poll_pending_ && data_available(snd_nxt_)) {
      stall_poll_pending_ = true;
      sim_->schedule_in(10 * sim::kMillisecond, "fault.app_stall_poll",
                        [this] {
                          stall_poll_pending_ = false;
                          try_send();
                        });
    }
    return;
  }
  const double pacing_bps = cc_->pacing_rate_bps();
  while (data_available(snd_nxt_) &&
         bytes_in_flight() + config_.mss_bytes <= effective_window()) {
    if (pacing_bps > 0.0 && sim_->now() < next_send_time_) {
      // Single-flight wake-up: at most one pacing timer is ever pending,
      // no matter how many ACKs poke try_send in the meantime.
      if (!pace_timer_pending_) {
        pace_timer_pending_ = true;
        sim_->schedule_at(next_send_time_, "tcp.pace", [this] {
          pace_timer_pending_ = false;
          try_send();
        });
      }
      return;
    }
    const std::uint64_t payload =
        bulk_ ? config_.mss_bytes
              : std::min<std::uint64_t>(config_.mss_bytes,
                                        app_limit_ - snd_nxt_);
    send_segment(snd_nxt_, /*retransmit=*/false);
    snd_nxt_ += payload;
    if (pacing_bps > 0.0) {
      const double gap_s = 8.0 * (config_.mss_bytes + config_.header_bytes) /
                           pacing_bps;
      next_send_time_ =
          std::max(next_send_time_, sim_->now()) + sim::from_seconds(gap_s);
    }
  }
}

void TcpSender::send_segment(std::uint64_t seq, bool retransmit) {
  std::uint32_t payload = config_.mss_bytes;
  if (!bulk_) {
    payload = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(payload, app_limit_ - seq));
    if (payload == 0) return;
  }

  net::Packet p;
  p.flow_id = flow_id_;
  p.seq = seq;
  p.size_bytes = payload + config_.header_bytes;
  p.sent_at = sim_->now();
  p.ect = config_.ecn;  // ECN-capable transport: qdiscs may mark, not drop
  emit_(std::move(p));

  if (retransmit) {
    ++retransmissions_;
    if (retx_ctr_ != nullptr) retx_ctr_->add();
    // in_flight_ stays sorted by seq (records are appended for new data
    // only), so the record lookup can binary-search — a linear scan makes
    // deep-window recovery quadratic.
    const auto it = std::lower_bound(
        in_flight_.begin(), in_flight_.end(), seq,
        [](const SegmentRecord& r, std::uint64_t s) { return r.seq < s; });
    if (it != in_flight_.end() && it->seq == seq) {
      it->sent_at = sim_->now();
      it->delivered_at_send = delivered_;
      it->delivered_time_at_send = delivered_time_;
      it->first_sent_at_send = first_sent_time_;
      it->retransmitted = true;
    }
  } else {
    // Data re-sent after a go-back-N rewind is still a retransmission for
    // Karn's rule: a straggler ACK of the earlier copy would otherwise
    // yield absurdly small RTT samples.
    const bool seen_before = seq + payload <= max_sent_seq_;
    in_flight_.push_back({seq, payload, sim_->now(), delivered_,
                          delivered_time_, first_sent_time_, seen_before});
    max_sent_seq_ = std::max(max_sent_seq_, seq + payload);
  }
  arm_rto();
}

void TcpSender::arm_rto() {
  if (rto_timer_) sim_->cancel(*rto_timer_);
  rto_timer_ = sim_->schedule_in(rtt_.rto(), "tcp.rto", [this] { on_rto(); });
}

void TcpSender::deliver(net::Packet p) {
  if (p.flow_id != flow_id_ || !p.is_ack) return;
  on_ack(p);
}

void TcpSender::on_ack(const net::Packet& ack) {
  const std::uint64_t ack_seq = ack.ack_seq;
  sack_high_ = std::max(sack_high_, ack.sack_high);
  // "Delivered" tracks the receiver's distinct-byte counter: it grows at
  // the true arrival rate even while holes hold the cumulative ACK back,
  // which keeps delivery-rate samples honest during recovery.
  if (ack.rcv_total > delivered_) {
    delivered_ = ack.rcv_total;
    delivered_time_ = sim_->now();
  }
  if (config_.ecn && ack.ece && snd_una_ >= ecn_cwr_point_) {
    // The receiver echoed a CE mark. Back off once, then ignore further
    // echoes until a full window of new data has been acked (the CWR
    // point) — the once-per-RTT discipline of RFC 3168 §6.1.2.
    ecn_cwr_point_ = snd_nxt_;
    ++ecn_responses_;
    if (ecn_ctr_ != nullptr) ecn_ctr_->add();
    if (tracer_ != nullptr) {
      tracer_->instant(sim_->now(), "tcp.ecn_backoff", "tcp",
                       {{"flow", std::to_string(flow_id_)},
                        {"snd_una", std::to_string(snd_una_)}});
    }
    cc_->on_ecn(sim_->now(), bytes_in_flight());
    log_cwnd();
  }
  if (ack_seq > snd_una_) {
    const std::uint64_t newly = ack_seq - snd_una_;
    snd_una_ = ack_seq;
    // A late ACK may outrun a go-back-N rewind of snd_nxt_.
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    dupacks_ = 0;
    rtt_.reset_backoff();

    // RTT sample from the newest fully-acked, never-retransmitted segment
    // (Karn's rule). Delivery-rate samples come from every acked segment —
    // retransmissions included — or BBR's max filter starves during
    // recovery and the bandwidth model collapses.
    sim::Time rtt_sample = 0;
    double rate_sample = 0.0;
    bool app_limited = !bulk_ && snd_nxt_ >= app_limit_;
    while (!in_flight_.empty() &&
           in_flight_.front().seq + in_flight_.front().payload <= ack_seq) {
      const SegmentRecord& r = in_flight_.front();
      // RFC delivery-rate estimation: interval is the slower of the send
      // spacing and the ACK spacing, so bursts of flushed-out-of-order
      // bytes cannot inflate the sample.
      const sim::Time send_elapsed = r.sent_at - r.first_sent_at_send;
      const sim::Time ack_elapsed = sim_->now() - r.delivered_time_at_send;
      const double interval_s =
          sim::to_seconds(std::max(send_elapsed, ack_elapsed));
      // Sub-millisecond windows (ACK compression through in-order links)
      // are too noisy to trust as bandwidth evidence.
      if (interval_s >= 0.001) {
        rate_sample =
            8.0 * static_cast<double>(delivered_ - r.delivered_at_send) /
            interval_s;
      }
      if (!r.retransmitted) rtt_sample = sim_->now() - r.sent_at;
      first_sent_time_ = r.sent_at;
      in_flight_.pop_front();
    }
    if (rtt_sample > 0) {
      rtt_.add_sample(sim_->now(), rtt_sample);
      if (rtt_d_ != nullptr) rtt_d_->observe(sim::to_millis(rtt_sample));
    }
    if (rate_d_ != nullptr && rate_sample > 0.0) {
      rate_d_->observe(rate_sample / 1e6);
    }

    if (in_recovery_ && ack_seq >= recovery_point_) {
      in_recovery_ = false;
    } else if (in_recovery_) {
      retransmit_holes();  // partial ACK: keep repairing the scoreboard
    }

    AckEvent e;
    e.now = sim_->now();
    e.rtt = rtt_sample;
    e.min_rtt = rtt_.min_rtt();
    e.acked_bytes = newly;
    e.delivered_bytes = delivered_;
    e.bytes_in_flight = bytes_in_flight();
    e.delivery_rate_bps = rate_sample;
    e.app_limited = app_limited;
    cc_->on_ack(e);
    log_cwnd();

    maybe_complete();
    if (bytes_in_flight() == 0 && !data_available(snd_nxt_)) {
      if (rto_timer_) {
        sim_->cancel(*rto_timer_);
        rto_timer_.reset();
      }
    } else {
      arm_rto();
    }
  } else if (ack_seq == snd_una_ && bytes_in_flight() > 0) {
    ++dupacks_;
    if (!in_recovery_ && dupacks_ >= config_.dupack_threshold) {
      enter_fast_retransmit();
    } else if (in_recovery_) {
      retransmit_holes();  // each dupack clocks out more repairs
    }
  }
  try_send();
}

void TcpSender::retransmit_holes() {
  // SACK-style pipelined repair: the receiver holds bytes up to
  // sack_high_, so everything unacked below it is a candidate hole.
  // Retransmit up to two segments per ACK (rate-halving-ish clocking).
  const std::uint64_t top = std::min(sack_high_, recovery_point_);
  std::uint64_t seq = std::max(retx_next_, snd_una_);
  if (seq >= top && snd_una_ < top &&
      sim_->now() - sweep_start_ > rtt_.smoothed_rtt()) {
    // Every hole was retransmitted once but the front one still has not
    // been ACKed after an SRTT: those repairs were themselves lost.
    // Sweep the scoreboard again.
    seq = snd_una_;
  }
  if (seq == snd_una_) sweep_start_ = sim_->now();
  int budget = 2;
  while (budget > 0 && seq < top) {
    send_segment(seq, /*retransmit=*/true);
    --budget;
    seq += config_.mss_bytes;
  }
  retx_next_ = seq;
}

void TcpSender::enter_fast_retransmit() {
  in_recovery_ = true;
  ++fast_recoveries_;
  recovery_point_ = snd_nxt_;
  retx_next_ = snd_una_;
  dupacks_ = 0;
  if (loss_ctr_ != nullptr) loss_ctr_->add();
  if (tracer_ != nullptr) {
    tracer_->instant(sim_->now(), "tcp.loss", "tcp",
                     {{"flow", std::to_string(flow_id_)},
                      {"kind", "fast_retransmit"},
                      {"snd_una", std::to_string(snd_una_)}});
  }
  cc_->on_loss(sim_->now(), bytes_in_flight());
  log_cwnd();
  retransmit_holes();
}

void TcpSender::on_rto() {
  rto_timer_.reset();
  if (bytes_in_flight() == 0) return;
  ++timeouts_;
  if (timeout_ctr_ != nullptr) timeout_ctr_->add();
  if (tracer_ != nullptr) {
    tracer_->instant(sim_->now(), "tcp.loss", "tcp",
                     {{"flow", std::to_string(flow_id_)},
                      {"kind", "rto"},
                      {"snd_una", std::to_string(snd_una_)}});
  }
  rtt_.backoff();
  cc_->on_timeout(sim_->now());
  log_cwnd();
  in_recovery_ = false;
  dupacks_ = 0;
  // Go-back-N: everything past snd_una_ is presumed lost.
  snd_nxt_ = snd_una_;
  in_flight_.clear();
  next_send_time_ = sim_->now();
  try_send();
}

void TcpSender::maybe_complete() {
  while (!completions_.empty() && snd_una_ >= completions_.front().first) {
    auto done = std::move(completions_.front().second);
    completions_.pop_front();
    done();
  }
}

}  // namespace fiveg::tcp

// Concrete congestion-control implementations. Exposed as classes (rather
// than hidden behind the factory) so tests can poke at their internals'
// observable behaviour directly.
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "tcp/congestion_control.h"

namespace fiveg::tcp {

/// NewReno: slow start + AIMD congestion avoidance (RFC 5681/6582 shape).
class RenoCc : public CongestionControl {
 public:
  explicit RenoCc(std::uint32_t mss);

  void on_ack(const AckEvent& e) override;
  void on_loss(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_timeout(sim::Time now) override;
  [[nodiscard]] double cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const override {
    return cwnd_ < ssthresh_;
  }
  [[nodiscard]] std::string name() const override { return "reno"; }

 protected:
  double mss_;
  double cwnd_;
  double ssthresh_;
};

/// CUBIC (Ha, Rhee, Xu 2008): cubic window growth keyed to time since the
/// last loss, with a Reno-friendly floor.
class CubicCc : public CongestionControl {
 public:
  explicit CubicCc(std::uint32_t mss);

  void on_ack(const AckEvent& e) override;
  void on_loss(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_timeout(sim::Time now) override;
  [[nodiscard]] double cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const override {
    return cwnd_ < ssthresh_;
  }
  [[nodiscard]] std::string name() const override { return "cubic"; }

 private:
  void enter_epoch(sim::Time now);

  static constexpr double kBeta = 0.7;  // multiplicative decrease
  static constexpr double kC = 0.4;     // cubic scaling (MSS/s^3)

  double mss_;
  double cwnd_;
  double ssthresh_;
  double w_max_mss_ = 0.0;     // window before the last reduction, in MSS
  sim::Time epoch_start_ = -1;
  double k_seconds_ = 0.0;     // time to regrow to w_max
  double w_est_mss_ = 0.0;     // Reno-friendly estimate
};

/// Vegas (Brakmo & Peterson 1994): keeps the backlog diff = (expected -
/// actual) * baseRTT between alpha and beta packets.
class VegasCc : public CongestionControl {
 public:
  explicit VegasCc(std::uint32_t mss);

  void on_ack(const AckEvent& e) override;
  void on_loss(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_timeout(sim::Time now) override;
  [[nodiscard]] double cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const override { return slow_start_; }
  [[nodiscard]] std::string name() const override { return "vegas"; }

  /// Current backlog estimate in packets (exposed for Veno and tests).
  [[nodiscard]] double backlog_packets() const noexcept { return diff_; }

 protected:
  static constexpr double kAlpha = 2.0;
  static constexpr double kBeta = 4.0;
  static constexpr double kGamma = 1.0;

  double mss_;
  double cwnd_;
  double ssthresh_;
  bool slow_start_ = true;
  sim::Time base_rtt_ = 0;   // minimum observed RTT
  double diff_ = 0.0;        // backlog estimate, packets
  sim::Time last_adjust_ = 0;  // adjust once per RTT
};

/// Veno (Fu & Liew 2003): Reno whose loss response consults the Vegas
/// backlog — random (non-congestive) losses only shrink the window to 0.8x.
class VenoCc : public RenoCc {
 public:
  explicit VenoCc(std::uint32_t mss);

  void on_ack(const AckEvent& e) override;
  void on_loss(sim::Time now, std::uint64_t bytes_in_flight) override;
  [[nodiscard]] std::string name() const override { return "veno"; }

 private:
  static constexpr double kBetaPackets = 3.0;

  sim::Time base_rtt_ = 0;
  double diff_ = 0.0;
  bool skip_increase_ = false;  // in congestive region, grow every other ack round
};

/// BBR v1 (Cardwell et al. 2016): model-based; paces at the bottleneck
/// bandwidth estimate and ignores packet loss.
class BbrCc : public CongestionControl {
 public:
  explicit BbrCc(std::uint32_t mss, CcSeed seed = {});

  void on_ack(const AckEvent& e) override;
  void on_loss(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_ecn(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_timeout(sim::Time now) override;
  [[nodiscard]] double cwnd_bytes() const override;
  [[nodiscard]] double pacing_rate_bps() const override;
  [[nodiscard]] bool in_slow_start() const override {
    return mode_ == Mode::kStartup;
  }
  [[nodiscard]] std::string name() const override { return "bbr"; }

  /// Current bottleneck-bandwidth estimate, bits/s (for tests/plots).
  [[nodiscard]] double btl_bw_bps() const;

 private:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  void update_round(const AckEvent& e);
  void update_btl_bw(const AckEvent& e);
  void advance_machine(const AckEvent& e);
  [[nodiscard]] double bdp_bytes(double gain) const;

  static constexpr double kHighGain = 2.885;
  static constexpr std::array<double, 8> kPacingCycle = {1.25, 0.75, 1, 1,
                                                         1, 1, 1, 1};

  double mss_;
  Mode mode_ = Mode::kStartup;
  double pacing_gain_ = kHighGain;
  double cwnd_gain_ = kHighGain;

  // Windowed-max bottleneck bandwidth over the last 10 rounds.
  std::deque<std::pair<std::uint64_t, double>> bw_samples_;
  std::uint64_t round_ = 0;
  sim::Time round_start_ = 0;

  sim::Time rt_prop_ = 0;
  sim::Time rt_prop_stamp_ = 0;

  // Startup plateau detection.
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  std::uint64_t last_plateau_check_round_ = 0;

  // ProbeBW cycling / ProbeRTT bookkeeping.
  std::size_t cycle_index_ = 0;
  sim::Time cycle_stamp_ = 0;
  sim::Time probe_rtt_done_ = 0;
  Mode mode_before_probe_rtt_ = Mode::kProbeBw;

  // ECN response: a temporary cap on the model-derived window (BBR's loss
  // response is a no-op, so CE marks need their own lever). 0 = inactive;
  // expires after one RTprop, checked on the next ACK.
  double ecn_cap_bytes_ = 0.0;
  sim::Time ecn_cap_until_ = 0;
};

}  // namespace fiveg::tcp

#include "tcp/rtt_estimator.h"

#include <algorithm>
#include <cstdlib>

namespace fiveg::tcp {

RttEstimator::RttEstimator(sim::Time min_rto, sim::Time initial_rto,
                           sim::Time min_window)
    : min_rto_(min_rto), initial_rto_(initial_rto), min_window_(min_window) {}

void RttEstimator::add_sample(sim::Time now, sim::Time rtt) {
  if (rtt <= 0) return;
  if (srtt_ == 0) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    // RFC 6298: alpha = 1/8, beta = 1/4.
    rttvar_ = (3 * rttvar_ + std::abs(srtt_ - rtt)) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }

  // Windowed min via a monotonic deque.
  while (!min_candidates_.empty() && min_candidates_.back().second >= rtt) {
    min_candidates_.pop_back();
  }
  min_candidates_.emplace_back(now, rtt);
  while (!min_candidates_.empty() &&
         min_candidates_.front().first + min_window_ < now) {
    min_candidates_.pop_front();
  }
}

sim::Time RttEstimator::rto() const noexcept {
  if (srtt_ == 0) return initial_rto_ * backoff_;
  const sim::Time base = srtt_ + std::max<sim::Time>(4 * rttvar_,
                                                     sim::kMillisecond);
  return std::max(min_rto_, base) * backoff_;
}

sim::Time RttEstimator::min_rtt() const noexcept {
  return min_candidates_.empty() ? 0 : min_candidates_.front().second;
}

}  // namespace fiveg::tcp

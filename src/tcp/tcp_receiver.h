// TCP receiver: in-order reassembly with cumulative ACKs (no SACK — the
// recovery behaviour of a plain NewReno stack, which is part of why bursty
// wireline loss devastates loss-based senders in the 5G experiments).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "measure/timeseries.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/tcp_endpoint.h"

namespace fiveg::tcp {

/// Receiving endpoint of one flow.
class TcpReceiver final : public net::PacketSink {
 public:
  /// `emit_ack` injects ACK packets toward the sender.
  TcpReceiver(sim::Simulator* simulator, TcpConfig config,
              std::uint32_t flow_id, std::function<void(net::Packet)> emit_ack);

  void deliver(net::Packet p) override;

  /// Contiguous bytes received so far.
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return cum_ack_;
  }

  /// Distinct payload bytes ever stored (contiguous + held out of order).
  /// fault::InvariantChecker bounds it by the sender's send high-water
  /// mark: the receiver cannot accept bytes that were never sent.
  [[nodiscard]] std::uint64_t total_accepted() const noexcept {
    return total_accepted_;
  }

  /// Per-arrival goodput log (bits per in-order delivery event).
  [[nodiscard]] const measure::TimeSeries& goodput_log() const noexcept {
    return goodput_log_;
  }

  /// Mean goodput between two instants, bits/s.
  [[nodiscard]] double mean_goodput_bps(sim::Time from, sim::Time to) const;

  /// CE-marked arrivals this receiver echoed back as ECE (0 unless both
  /// the path marked and this endpoint negotiated ECN).
  [[nodiscard]] std::uint64_t ce_marks_seen() const noexcept {
    return ce_marks_seen_;
  }

 private:
  sim::Simulator* sim_;
  TcpConfig config_;
  std::uint32_t flow_id_;
  std::function<void(net::Packet)> emit_ack_;

  std::uint64_t cum_ack_ = 0;  // next expected byte
  std::uint64_t highest_held_ = 0;  // top of the receive scoreboard
  std::uint64_t total_accepted_ = 0;  // distinct payload bytes ever stored
  std::map<std::uint64_t, std::uint64_t> out_of_order_;  // start -> payload
  std::uint64_t ce_marks_seen_ = 0;  // CE arrivals echoed as ECE
  measure::TimeSeries goodput_log_;
};

}  // namespace fiveg::tcp

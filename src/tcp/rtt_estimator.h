// RTT estimation: RFC 6298 smoothed RTT / RTO plus a sliding-window
// minimum (BBR's RTprop and Vegas' baseRTT rely on a fresh minimum).
#pragma once

#include <deque>
#include <utility>

#include "sim/time.h"

namespace fiveg::tcp {

/// RFC 6298 estimator with a windowed minimum.
class RttEstimator {
 public:
  explicit RttEstimator(sim::Time min_rto = 200 * sim::kMillisecond,
                        sim::Time initial_rto = sim::kSecond,
                        sim::Time min_window = 10 * sim::kSecond);

  /// Feeds one RTT sample taken at time `now`.
  void add_sample(sim::Time now, sim::Time rtt);

  [[nodiscard]] bool has_sample() const noexcept { return srtt_ > 0; }
  [[nodiscard]] sim::Time smoothed_rtt() const noexcept { return srtt_; }
  [[nodiscard]] sim::Time rtt_var() const noexcept { return rttvar_; }

  /// Current retransmission timeout (clamped below by min_rto).
  [[nodiscard]] sim::Time rto() const noexcept;

  /// Minimum RTT within the sliding window (0 before any sample).
  [[nodiscard]] sim::Time min_rtt() const noexcept;

  /// Exponential timer backoff after consecutive timeouts.
  void backoff() noexcept { backoff_ = std::min(backoff_ * 2, 64); }
  void reset_backoff() noexcept { backoff_ = 1; }

 private:
  sim::Time min_rto_;
  sim::Time initial_rto_;
  sim::Time min_window_;
  sim::Time srtt_ = 0;
  sim::Time rttvar_ = 0;
  int backoff_ = 1;
  // Monotonic deque of (time, rtt) candidates for the windowed min.
  std::deque<std::pair<sim::Time, sim::Time>> min_candidates_;
};

}  // namespace fiveg::tcp

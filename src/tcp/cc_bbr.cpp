#include <algorithm>

#include "tcp/cc_algorithms.h"

namespace fiveg::tcp {
namespace {

constexpr std::uint64_t kBwWindowRounds = 10;
constexpr sim::Time kRtPropWindow = 10 * sim::kSecond;
constexpr sim::Time kProbeRttDuration = 200 * sim::kMillisecond;
constexpr double kMinCwndMss = 4.0;

}  // namespace

BbrCc::BbrCc(std::uint32_t mss, CcSeed seed) : mss_(mss) {
  if (seed.rate_bps > 0 && seed.rtt > 0) {
    // Deterministic start (the paper's cited slow-start replacement): the
    // model is pre-seeded, so the flow opens directly in ProbeBW at full
    // rate instead of spending ~6 s climbing.
    bw_samples_.emplace_back(0, seed.rate_bps);
    rt_prop_ = seed.rtt;
    rt_prop_stamp_ = 0;
    mode_ = Mode::kProbeBw;
    pacing_gain_ = kPacingCycle[0];
    cwnd_gain_ = 2.0;
  }
}

double BbrCc::btl_bw_bps() const {
  double best = 0.0;
  for (const auto& [round, bw] : bw_samples_) best = std::max(best, bw);
  return best;
}

double BbrCc::bdp_bytes(double gain) const {
  const double bw = btl_bw_bps();
  if (bw <= 0.0 || rt_prop_ <= 0) return kMinCwndMss * mss_ * kHighGain;
  return gain * bw / 8.0 * sim::to_seconds(rt_prop_);
}

double BbrCc::cwnd_bytes() const {
  double w = mode_ == Mode::kProbeRtt
                 ? kMinCwndMss * mss_
                 : std::max(bdp_bytes(cwnd_gain_), kMinCwndMss * mss_);
  if (ecn_cap_bytes_ > 0.0) w = std::min(w, ecn_cap_bytes_);
  return w;
}

double BbrCc::pacing_rate_bps() const {
  // Floor: always willing to pace at least a minimum window per RTprop,
  // so a depressed bandwidth estimate cannot starve its own probing.
  const double floor_rtt_s =
      rt_prop_ > 0 ? sim::to_seconds(rt_prop_) : 0.010;
  const double floor_bps = kMinCwndMss * mss_ * 8.0 / floor_rtt_s;
  const double bw = btl_bw_bps();
  return std::max(pacing_gain_ * bw, floor_bps);
}

void BbrCc::update_round(const AckEvent& e) {
  // Time-based rounds: one per RTprop (with a floor while no estimate
  // exists). Packet-counting rounds mis-fire early in a paced startup when
  // little data is in flight.
  const sim::Time round_len =
      std::max<sim::Time>(rt_prop_, 10 * sim::kMillisecond);
  if (e.now >= round_start_ + round_len) {
    round_start_ = e.now;
    ++round_;
  }
}

void BbrCc::update_btl_bw(const AckEvent& e) {
  if (e.delivery_rate_bps <= 0.0) return;
  // App-limited samples can only raise the estimate (RFC draft rule).
  if (e.app_limited && e.delivery_rate_bps <= btl_bw_bps()) return;
  bw_samples_.emplace_back(round_, e.delivery_rate_bps);
  while (!bw_samples_.empty() &&
         bw_samples_.front().first + kBwWindowRounds < round_) {
    bw_samples_.pop_front();
  }
}

void BbrCc::advance_machine(const AckEvent& e) {
  switch (mode_) {
    case Mode::kStartup: {
      // Plateau detection, once per round: <25% growth for 3 rounds.
      if (round_ != last_plateau_check_round_) {
        last_plateau_check_round_ = round_;
        const double bw = btl_bw_bps();
        if (bw >= full_bw_ * 1.25 || full_bw_ == 0.0) {
          full_bw_ = bw;
          full_bw_rounds_ = 0;
        } else if (++full_bw_rounds_ >= 3) {
          mode_ = Mode::kDrain;
          pacing_gain_ = 1.0 / kHighGain;
          cwnd_gain_ = kHighGain;
        }
      }
      break;
    }
    case Mode::kDrain:
      if (static_cast<double>(e.bytes_in_flight) <= bdp_bytes(1.0)) {
        mode_ = Mode::kProbeBw;
        cycle_index_ = 0;
        cycle_stamp_ = e.now;
        pacing_gain_ = kPacingCycle[0];
        cwnd_gain_ = 2.0;
      }
      break;
    case Mode::kProbeBw:
      if (e.now - cycle_stamp_ >= std::max<sim::Time>(rt_prop_, 1)) {
        cycle_index_ = (cycle_index_ + 1) % kPacingCycle.size();
        cycle_stamp_ = e.now;
        pacing_gain_ = kPacingCycle[cycle_index_];
      }
      break;
    case Mode::kProbeRtt:
      if (e.now >= probe_rtt_done_) {
        rt_prop_stamp_ = e.now;  // fresh lease on the estimate
        mode_ = mode_before_probe_rtt_;
        pacing_gain_ = mode_ == Mode::kStartup ? kHighGain
                                               : kPacingCycle[cycle_index_];
        cwnd_gain_ = mode_ == Mode::kStartup ? kHighGain : 2.0;
      }
      break;
  }

  // ProbeRTT entry: the rt_prop estimate has gone stale.
  if (mode_ != Mode::kProbeRtt && rt_prop_ > 0 &&
      e.now - rt_prop_stamp_ > kRtPropWindow) {
    mode_before_probe_rtt_ = mode_ == Mode::kStartup ? Mode::kProbeBw : mode_;
    mode_ = Mode::kProbeRtt;
    pacing_gain_ = 1.0;
    cwnd_gain_ = 1.0;
    probe_rtt_done_ = e.now + kProbeRttDuration;
  }
}

void BbrCc::on_ack(const AckEvent& e) {
  if (ecn_cap_bytes_ > 0.0 && e.now >= ecn_cap_until_) ecn_cap_bytes_ = 0.0;
  if (e.rtt > 0 && (rt_prop_ == 0 || e.rtt <= rt_prop_ ||
                    e.now - rt_prop_stamp_ > kRtPropWindow)) {
    rt_prop_ = e.rtt;
    rt_prop_stamp_ = e.now;
  }
  update_round(e);
  update_btl_bw(e);
  advance_machine(e);
}

void BbrCc::on_loss(sim::Time /*now*/, std::uint64_t /*bytes_in_flight*/) {
  // BBR v1 deliberately ignores individual losses.
}

void BbrCc::on_ecn(sim::Time now, std::uint64_t /*bytes_in_flight*/) {
  // A CE mark is an unambiguous congestion signal even for a model-based
  // sender, so it gets a real response where on_loss() has none: cap the
  // window at half for one RTprop, then let the model take back over.
  ecn_cap_bytes_ = std::max(cwnd_bytes() * 0.5, kMinCwndMss * mss_);
  ecn_cap_until_ =
      now + std::max<sim::Time>(rt_prop_, 10 * sim::kMillisecond);
}

void BbrCc::on_timeout(sim::Time /*now*/) {
  // Keep the bandwidth model (as Linux BBR does): wiping it after a burst
  // of loss leaves pacing anchored to a near-zero estimate, a trap the
  // flow can take tens of seconds to probe its way out of.
  if (mode_ == Mode::kStartup) {
    full_bw_ = 0.0;
    full_bw_rounds_ = 0;
  }
}

}  // namespace fiveg::tcp

#include <algorithm>
#include <cmath>

#include "tcp/cc_algorithms.h"

namespace fiveg::tcp {
namespace {

constexpr double kInitialCwndMss = 10.0;
constexpr double kMinCwndMss = 2.0;

}  // namespace

CubicCc::CubicCc(std::uint32_t mss)
    : mss_(mss), cwnd_(kInitialCwndMss * mss), ssthresh_(1e18) {}

void CubicCc::enter_epoch(sim::Time now) {
  epoch_start_ = now;
  const double cwnd_mss = cwnd_ / mss_;
  if (w_max_mss_ > cwnd_mss) {
    k_seconds_ = std::cbrt((w_max_mss_ - cwnd_mss) / kC);
  } else {
    k_seconds_ = 0.0;
    w_max_mss_ = cwnd_mss;
  }
  w_est_mss_ = cwnd_mss;
}

void CubicCc::on_ack(const AckEvent& e) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(e.acked_bytes);
    return;
  }
  if (epoch_start_ < 0) enter_epoch(e.now);

  const double t = sim::to_seconds(e.now - epoch_start_);
  const double rtt_s = sim::to_seconds(std::max<sim::Time>(e.rtt, 1));
  // Target the cubic curve one RTT ahead.
  const double target_mss =
      kC * std::pow(t + rtt_s - k_seconds_, 3.0) + w_max_mss_;

  // Reno-friendly region: grow W_est like AIMD with beta-compensated slope.
  w_est_mss_ += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) *
                (static_cast<double>(e.acked_bytes) / cwnd_);

  const double cwnd_mss = cwnd_ / mss_;
  double next_mss = cwnd_mss;
  if (target_mss > cwnd_mss) {
    // Approach the target over one RTT's worth of ACKs.
    next_mss = cwnd_mss + (target_mss - cwnd_mss) *
                              (static_cast<double>(e.acked_bytes) / cwnd_);
  } else {
    next_mss = cwnd_mss + 0.01 * (static_cast<double>(e.acked_bytes) / cwnd_);
  }
  cwnd_ = std::max(next_mss, w_est_mss_) * mss_;
}

void CubicCc::on_loss(sim::Time now, std::uint64_t /*bytes_in_flight*/) {
  // Fast convergence: if we never got back to w_max, release capacity.
  const double cwnd_mss = cwnd_ / mss_;
  w_max_mss_ = cwnd_mss < w_max_mss_ ? cwnd_mss * (1.0 + kBeta) / 2.0
                                     : cwnd_mss;
  cwnd_ = std::max(cwnd_ * kBeta, kMinCwndMss * mss_);
  ssthresh_ = cwnd_;
  epoch_start_ = -1;
  (void)now;
}

void CubicCc::on_timeout(sim::Time /*now*/) {
  w_max_mss_ = cwnd_ / mss_;
  ssthresh_ = std::max(cwnd_ * kBeta, kMinCwndMss * mss_);
  cwnd_ = mss_;
  epoch_start_ = -1;
}

}  // namespace fiveg::tcp

#include <algorithm>

#include "tcp/cc_algorithms.h"

namespace fiveg::tcp {

VenoCc::VenoCc(std::uint32_t mss) : RenoCc(mss) {}

void VenoCc::on_ack(const AckEvent& e) {
  if (e.rtt > 0) {
    if (base_rtt_ == 0 || e.rtt < base_rtt_) base_rtt_ = e.rtt;
    const double cwnd_pkts = cwnd_ / mss_;
    const double expected = cwnd_pkts / sim::to_seconds(base_rtt_);
    const double actual = cwnd_pkts / sim::to_seconds(e.rtt);
    diff_ = (expected - actual) * sim::to_seconds(base_rtt_);
  }

  if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(e.acked_bytes);
    return;
  }
  if (diff_ < kBetaPackets) {
    // Available bandwidth: grow like Reno.
    cwnd_ += mss_ * static_cast<double>(e.acked_bytes) / cwnd_;
  } else {
    // Congestive region: grow at half pace (every other ACK's worth).
    skip_increase_ = !skip_increase_;
    if (!skip_increase_) {
      cwnd_ += mss_ * static_cast<double>(e.acked_bytes) / cwnd_;
    }
  }
}

void VenoCc::on_loss(sim::Time /*now*/, std::uint64_t /*bytes_in_flight*/) {
  if (diff_ < kBetaPackets) {
    // Queues were empty: the loss was likely random (wireless) — back off
    // gently, Veno's signature move.
    ssthresh_ = std::max(cwnd_ * 0.8, 2.0 * mss_);
  } else {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  }
  cwnd_ = ssthresh_;
}

}  // namespace fiveg::tcp

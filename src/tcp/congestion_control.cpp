#include "tcp/congestion_control.h"

#include "tcp/cc_algorithms.h"

namespace fiveg::tcp {

std::string to_string(CcAlgo a) {
  switch (a) {
    case CcAlgo::kReno:
      return "Reno";
    case CcAlgo::kCubic:
      return "Cubic";
    case CcAlgo::kVegas:
      return "Vegas";
    case CcAlgo::kVeno:
      return "Veno";
    case CcAlgo::kBbr:
      return "BBR";
  }
  return "?";
}

std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgo algo, std::uint32_t mss_bytes, CcSeed seed) {
  switch (algo) {
    case CcAlgo::kReno:
      return std::make_unique<RenoCc>(mss_bytes);
    case CcAlgo::kCubic:
      return std::make_unique<CubicCc>(mss_bytes);
    case CcAlgo::kVegas:
      return std::make_unique<VegasCc>(mss_bytes);
    case CcAlgo::kVeno:
      return std::make_unique<VenoCc>(mss_bytes);
    case CcAlgo::kBbr:
      return std::make_unique<BbrCc>(mss_bytes, seed);
  }
  return nullptr;
}

}  // namespace fiveg::tcp

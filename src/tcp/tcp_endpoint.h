// Shared TCP configuration for sender/receiver pairs. Mirrors the paper's
// setup: 25 MB receive buffer (big enough to never bind), standard MSS, and
// a pluggable congestion controller.
#pragma once

#include <cstdint>

#include "sim/time.h"
#include "tcp/congestion_control.h"

namespace fiveg::tcp {

/// Per-connection parameters.
struct TcpConfig {
  CcAlgo algo = CcAlgo::kCubic;
  std::uint32_t mss_bytes = 1460;
  std::uint32_t header_bytes = 40;   // IP+TCP on data packets; ACKs are bare
  std::uint64_t receive_window_bytes = 25ull * 1024 * 1024;  // iperf3 -w 25M
  sim::Time min_rto = 200 * sim::kMillisecond;
  sim::Time initial_rto = sim::kSecond;
  int dupack_threshold = 3;
  // ECN (RFC 3168): when both endpoints enable it, the sender stamps data
  // packets ECT, the receiver echoes CE marks as ECE, and the sender backs
  // off once per RTT without any packet having been lost.
  bool ecn = false;
  // Deterministic-start hint (BBR only): skip slow start entirely.
  CcSeed seed;
};

}  // namespace fiveg::tcp

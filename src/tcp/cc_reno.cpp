#include <algorithm>

#include "tcp/cc_algorithms.h"

namespace fiveg::tcp {
namespace {

constexpr double kInitialCwndMss = 10.0;
constexpr double kMinCwndMss = 2.0;

}  // namespace

RenoCc::RenoCc(std::uint32_t mss)
    : mss_(mss), cwnd_(kInitialCwndMss * mss), ssthresh_(1e18) {}

void RenoCc::on_ack(const AckEvent& e) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(e.acked_bytes);  // slow start
  } else {
    // Congestion avoidance: ~1 MSS per RTT.
    cwnd_ += mss_ * mss_ * static_cast<double>(e.acked_bytes) /
             (cwnd_ * mss_);
  }
}

void RenoCc::on_loss(sim::Time /*now*/, std::uint64_t /*bytes_in_flight*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = ssthresh_;
}

void RenoCc::on_timeout(sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = mss_;  // restart from one segment
}

}  // namespace fiveg::tcp

#include <algorithm>

#include "tcp/cc_algorithms.h"

namespace fiveg::tcp {
namespace {

constexpr double kInitialCwndMss = 10.0;
constexpr double kMinCwndMss = 2.0;

}  // namespace

VegasCc::VegasCc(std::uint32_t mss)
    : mss_(mss), cwnd_(kInitialCwndMss * mss), ssthresh_(1e18) {}

void VegasCc::on_ack(const AckEvent& e) {
  if (e.rtt <= 0) return;
  if (base_rtt_ == 0 || e.rtt < base_rtt_) base_rtt_ = e.rtt;

  // diff = (expected - actual) * baseRTT, in packets: the data parked in
  // queues along the path.
  const double cwnd_pkts = cwnd_ / mss_;
  const double expected = cwnd_pkts / sim::to_seconds(base_rtt_);
  const double actual = cwnd_pkts / sim::to_seconds(e.rtt);
  diff_ = (expected - actual) * sim::to_seconds(base_rtt_);

  if (slow_start_) {
    if (diff_ > kGamma) {
      slow_start_ = false;
      ssthresh_ = cwnd_;
    } else if (e.now - last_adjust_ >= base_rtt_) {
      // Vegas doubles every *other* RTT to keep diff readable.
      cwnd_ += static_cast<double>(e.acked_bytes);
    }
    return;
  }

  // Linear adjustment once per RTT.
  if (e.now - last_adjust_ < std::max<sim::Time>(e.rtt, 1)) return;
  last_adjust_ = e.now;
  if (diff_ < kAlpha) {
    cwnd_ += mss_;
  } else if (diff_ > kBeta) {
    cwnd_ = std::max(cwnd_ - mss_, kMinCwndMss * mss_);
  }
}

void VegasCc::on_loss(sim::Time /*now*/, std::uint64_t /*bytes_in_flight*/) {
  slow_start_ = false;
  cwnd_ = std::max(cwnd_ * 0.5, kMinCwndMss * mss_);
  ssthresh_ = cwnd_;
}

void VegasCc::on_timeout(sim::Time /*now*/) {
  slow_start_ = false;
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = mss_;
}

}  // namespace fiveg::tcp

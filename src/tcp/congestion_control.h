// Congestion-control interface and factory. The paper benchmarks five
// algorithms over 4G/5G: loss-based Reno and CUBIC, delay-based Vegas,
// hybrid Veno, and model-based BBR — all re-implemented here from their
// original papers/RFCs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.h"

namespace fiveg::tcp {

/// Which algorithm a flow runs.
enum class CcAlgo { kReno, kCubic, kVegas, kVeno, kBbr };

[[nodiscard]] std::string to_string(CcAlgo a);

/// Everything a congestion controller may want to know about an ACK.
struct AckEvent {
  sim::Time now = 0;
  sim::Time rtt = 0;              // RTT sample carried by this ACK (0 = none)
  sim::Time min_rtt = 0;          // sender's windowed minimum RTT
  std::uint64_t acked_bytes = 0;  // newly acknowledged by this ACK
  std::uint64_t delivered_bytes = 0;  // cumulative delivered at this point
  std::uint64_t bytes_in_flight = 0;  // after processing this ACK
  double delivery_rate_bps = 0;   // rate sample (0 = no valid sample)
  bool app_limited = false;       // sample taken while app-limited
};

/// Strategy interface; one instance per flow.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Called for every ACK that acknowledges new data.
  virtual void on_ack(const AckEvent& e) = 0;

  /// Called once per loss-recovery episode (triple-dupack fast retransmit).
  virtual void on_loss(sim::Time now, std::uint64_t bytes_in_flight) = 0;

  /// Called at most once per RTT when the peer echoes an ECN congestion
  /// mark (ECE). RFC 3168 says to react as to a single lost packet, so the
  /// default delegates to on_loss(); algorithms whose loss response is a
  /// no-op (BBR) override with an explicit window reduction.
  virtual void on_ecn(sim::Time now, std::uint64_t bytes_in_flight) {
    on_loss(now, bytes_in_flight);
  }

  /// Called on retransmission timeout.
  virtual void on_timeout(sim::Time now) = 0;

  /// Current congestion window in bytes.
  [[nodiscard]] virtual double cwnd_bytes() const = 0;

  /// Pacing rate in bits/s; 0 means "no pacing, ack-clocked".
  [[nodiscard]] virtual double pacing_rate_bps() const { return 0.0; }

  /// True while the algorithm considers itself in its startup phase
  /// (exposed so experiments can report slow-start exit times, Fig. 8).
  [[nodiscard]] virtual bool in_slow_start() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Optional a-priori path knowledge, the paper's cited web fix: replace
/// slow-start probing with a deterministic bandwidth estimate (e.g. from
/// the radio layer's own link adaptation).
struct CcSeed {
  double rate_bps = 0;  // 0 = no hint, probe normally
  sim::Time rtt = 0;
};

/// Creates a controller. `mss` is the sender's segment size.
[[nodiscard]] std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgo algo, std::uint32_t mss_bytes, CcSeed seed = {});

}  // namespace fiveg::tcp

// iperf3-style active measurement sessions: TCP/UDP flows bound to a
// PathNetwork with both endpoints wired up — the workhorses of the
// throughput experiments (Figs. 7-9).
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.h"
#include "net/path.h"
#include "net/udp.h"
#include "sim/simulator.h"
#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace fiveg::app {

/// Fan-out sinks at both ends of a path, so several flows (and cross
/// traffic) can coexist; each endpoint filters by flow id. Construct one
/// per path, before any session.
struct PathFanout {
  explicit PathFanout(net::PathNetwork* path) {
    path->attach_a(&a);
    path->attach_b(&b);
  }
  net::FanoutSink a;
  net::FanoutSink b;
};

/// A TCP connection strung across a path: A-side sender, B-side receiver.
/// (The paper's downlink, cloud -> UE, maps to building the path with the
/// server at A; orientation is the caller's choice.)
class TcpSession {
 public:
  TcpSession(sim::Simulator* simulator, net::PathNetwork* path,
             PathFanout* fanout, tcp::TcpConfig config,
             std::uint32_t flow_id = 1);

  [[nodiscard]] tcp::TcpSender& sender() noexcept { return *sender_; }
  [[nodiscard]] tcp::TcpReceiver& receiver() noexcept { return *receiver_; }
  [[nodiscard]] const tcp::TcpSender& sender() const noexcept {
    return *sender_;
  }
  [[nodiscard]] const tcp::TcpReceiver& receiver() const noexcept {
    return *receiver_;
  }

 private:
  std::unique_ptr<tcp::TcpSender> sender_;
  std::unique_ptr<tcp::TcpReceiver> receiver_;
};

/// Result of a UDP load test.
struct UdpTestResult {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  double loss_ratio = 0.0;
  double mean_throughput_bps = 0.0;
};

/// UDP load test: sends at `rate_bps` from A to B and reports
/// receiver-side statistics. The path may carry other traffic too.
class UdpTest {
 public:
  UdpTest(sim::Simulator* simulator, net::PathNetwork* path,
          PathFanout* fanout, double rate_bps, std::uint32_t flow_id = 77);

  /// Starts now; the source stops after `duration`.
  void start(sim::Time duration);

  /// Statistics over [from, to].
  [[nodiscard]] UdpTestResult result(sim::Time from, sim::Time to) const;
  [[nodiscard]] const net::UdpSink& sink() const noexcept { return sink_; }

 private:
  net::UdpSink sink_;
  net::UdpSource source_;
};

}  // namespace fiveg::app

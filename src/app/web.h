// Mobile web browsing model (Sec. 5.1): a page load is a fresh TCP
// connection downloading the page body, followed by device-side rendering.
// The paper's two findings are structural: rendering dominates PLT, and
// TCP's slow-start transient ends before it can use 5G's bandwidth — both
// fall out of this model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/path.h"
#include "sim/simulator.h"
#include "tcp/tcp_endpoint.h"

namespace fiveg::app {

struct PathFanout;  // from app/iperf.h

/// One test page.
struct WebPage {
  std::string category;
  std::uint64_t bytes = 1 << 20;  // transfer size
  sim::Time render_time = 0;      // device-side rendering cost
  // Pages are dependency chains, not one blob: the body references
  // scripts/styles/images fetched in `sequential_objects` request rounds
  // on the same connection. Each round costs a request RTT — the reason
  // bandwidth alone cannot fix PLT.
  int sequential_objects = 8;
};

/// The paper's five page categories (Fig. 16), with sizes and rendering
/// costs calibrated so 4G/5G PLTs land on the reported bars.
[[nodiscard]] std::vector<WebPage> paper_pages();

/// An image page of `megabytes` (Fig. 17's 1..16 MB sweep).
[[nodiscard]] WebPage image_page(double megabytes);

/// Page-load-time breakdown.
struct PltResult {
  double download_s = 0.0;
  double render_s = 0.0;
  [[nodiscard]] double total_s() const noexcept {
    return download_s + render_s;
  }
};

/// Loads `page` over a fresh TCP connection on `path` (server at A, the
/// device at B) and reports the PLT split via `done`.
class WebBrowser {
 public:
  WebBrowser(sim::Simulator* simulator, net::PathNetwork* path,
             PathFanout* fanout, tcp::TcpConfig config);
  ~WebBrowser();

  WebBrowser(const WebBrowser&) = delete;
  WebBrowser& operator=(const WebBrowser&) = delete;

  /// Starts the load now (HTTP request RTT + download + render).
  void load(const WebPage& page, std::function<void(PltResult)> done);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fiveg::app

#include "app/video.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "app/iperf.h"
#include "obs/obs.h"

namespace fiveg::app {

std::string to_string(Resolution r) {
  switch (r) {
    case Resolution::k720p:
      return "720P";
    case Resolution::k1080p:
      return "1080P";
    case Resolution::k4K:
      return "4K";
    case Resolution::k5p7K:
      return "5.7K";
  }
  return "?";
}

double nominal_bitrate_bps(Resolution r) noexcept {
  // Encoded panoramic streams (Insta360 ONE X class hardware): the paper
  // cites 35-68 Mbps for 4K telephony and shows ~80+ Mbps spikes at 5.7K.
  switch (r) {
    case Resolution::k720p:
      return 10e6;
    case Resolution::k1080p:
      return 18e6;
    case Resolution::k4K:
      return 45e6;
    case Resolution::k5p7K:
      return 80e6;
  }
  return 0.0;
}

struct VideoTelephony::Impl {
  sim::Simulator* sim;
  VideoConfig config;
  sim::Rng rng;
  std::unique_ptr<TcpSession> session;

  sim::Time stop_at = 0;
  std::uint64_t captured = 0;
  std::uint64_t delivered = 0;
  int freezes = 0;
  sim::Time last_delivery = -1;
  measure::Cdf delay_s;
  measure::Cdf frame_bytes;
  sim::Time first_capture = 0;

  // ABR state: the live encoding resolution (<= the configured one).
  Resolution live_res = Resolution::k4K;
  int downshifts = 0;
  int upshifts = 0;
  std::uint64_t reduced_frames = 0;
  int drain_streak = 0;

  static Resolution lower(Resolution r) {
    switch (r) {
      case Resolution::k5p7K:
        return Resolution::k4K;
      case Resolution::k4K:
        return Resolution::k1080p;
      default:
        return Resolution::k720p;
    }
  }
  static Resolution higher(Resolution r) {
    switch (r) {
      case Resolution::k720p:
        return Resolution::k1080p;
      case Resolution::k1080p:
        return Resolution::k4K;
      default:
        return Resolution::k5p7K;
    }
  }

  void adapt_bitrate() {
    const double backlog =
        static_cast<double>(session->sender().backlog_bytes());
    const double rate = nominal_bitrate_bps(live_res);
    const double backlog_s = backlog * 8.0 / rate;
    if (backlog_s > 1.0 && live_res != Resolution::k720p) {
      live_res = lower(live_res);
      ++downshifts;
      drain_streak = 0;
    } else if (backlog_s < 0.15 && live_res != config.resolution) {
      // Upshift only after the pipe stays drained for ~2 s of frames.
      if (++drain_streak >= 2 * config.fps) {
        live_res = higher(live_res);
        ++upshifts;
        drain_streak = 0;
      }
    } else {
      drain_streak = 0;
    }
  }

  void capture_frame() {
    if (sim->now() >= stop_at) return;
    const sim::Time captured_at = sim->now();
    ++captured;

    if (config.adaptive_bitrate) {
      adapt_bitrate();
      if (live_res != config.resolution) ++reduced_frames;
    }

    // Encoded frame size: nominal bytes-per-frame with scene-dependent
    // fluctuation — dynamic scenes defeat motion prediction, so frames
    // run larger and much burstier (Fig. 19).
    const double mean_bytes =
        nominal_bitrate_bps(config.adaptive_bitrate ? live_res
                                                    : config.resolution) /
        8.0 / config.fps;
    const double sigma = config.dynamic_scene ? 0.50 : 0.15;
    const double scale = config.dynamic_scene ? 1.25 : 1.0;
    const double bytes =
        std::max(2000.0, mean_bytes * scale *
                             rng.lognormal(-0.5 * sigma * sigma, sigma));
    frame_bytes.add(bytes);

    // The frame enters the wire only after stitch + encode.
    const sim::Time handoff =
        config.costs.capture_stitch + config.costs.encode;
    sim->schedule_in(handoff, [this, captured_at, bytes] {
      session->sender().send_bytes(
          static_cast<std::uint64_t>(bytes), [this, captured_at] {
            on_frame_delivered(captured_at);
          });
    });

    sim->schedule_in(sim::kSecond / config.fps, [this] { capture_frame(); });
  }

  void on_frame_delivered(sim::Time captured_at) {
    ++delivered;
    const sim::Time display_at = sim->now() + config.costs.decode_render +
                                 config.costs.rtmp_relay;
    delay_s.add(sim::to_seconds(display_at - captured_at));
    if (auto* m = obs::metrics()) {
      m->digest("app.video.frame_delay_ms")
          .observe(sim::to_millis(display_at - captured_at));
    }
    if (last_delivery >= 0) {
      const sim::Time gap = sim->now() - last_delivery;
      if (gap > 3 * (sim::kSecond / config.fps)) {
        ++freezes;
        if (auto* m = obs::metrics()) {
          m->counter("app.video.freezes").add();
          m->digest("app.video.freeze_gap_ms").observe(sim::to_millis(gap));
        }
      }
    }
    last_delivery = sim->now();
  }
};

VideoTelephony::VideoTelephony(sim::Simulator* simulator,
                               net::PathNetwork* path, PathFanout* fanout,
                               VideoConfig config, sim::Rng rng)
    : impl_(new Impl{simulator, config, rng, nullptr, 0, 0, 0, 0, -1,
                     {}, {}, 0}) {
  impl_->session = std::make_unique<TcpSession>(
      simulator, path, fanout, config.transport, /*flow_id=*/3000);
}

VideoTelephony::~VideoTelephony() = default;

void VideoTelephony::start(sim::Time duration) {
  impl_->stop_at = impl_->sim->now() + duration;
  impl_->first_capture = impl_->sim->now();
  impl_->live_res = impl_->config.resolution;
  impl_->capture_frame();
}

VideoStats VideoTelephony::stats() const {
  VideoStats s;
  s.frames_captured = impl_->captured;
  s.frames_delivered = impl_->delivered;
  s.freeze_events = impl_->freezes;
  s.frame_delay_s = impl_->delay_s;
  s.frame_bytes = impl_->frame_bytes;
  s.downshifts = impl_->downshifts;
  s.upshifts = impl_->upshifts;
  s.frames_at_reduced_res = impl_->reduced_frames;
  const sim::Time from = impl_->first_capture;
  const sim::Time to = impl_->stop_at;
  if (to > from) {
    s.mean_received_throughput_bps =
        impl_->session->receiver().mean_goodput_bps(from, to);
  }
  return s;
}

const measure::TimeSeries& VideoTelephony::received_bytes_log() const {
  return impl_->session->receiver().goodput_log();
}

}  // namespace fiveg::app

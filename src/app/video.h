// 360TEL: the paper's UHD panoramic video telephony system (Sec. 5.2).
// Frames are captured at 30 FPS, stitched and hardware-encoded on the
// phone, streamed over RTMP/TCP up to the cloud, and decoded/rendered at
// the far end. The paper's measured pipeline costs are built in: the
// punchline — processing latency ~10x network transmission — is arithmetic
// this model reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "measure/cdf.h"
#include "measure/timeseries.h"
#include "net/path.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "tcp/tcp_endpoint.h"

namespace fiveg::app {

struct PathFanout;

/// Camera resolutions tested in the paper.
enum class Resolution { k720p, k1080p, k4K, k5p7K };

[[nodiscard]] std::string to_string(Resolution r);

/// Nominal encoded bit-rate of the stream.
[[nodiscard]] double nominal_bitrate_bps(Resolution r) noexcept;

/// The paper's measured pipeline stage costs.
struct PipelineCosts {
  sim::Time capture_stitch = sim::from_millis(360);  // camera + patch splice
  sim::Time encode = sim::from_millis(160);          // H.264 hardware codec
  sim::Time decode_render = sim::from_millis(130);   // decode (50) + render
  sim::Time rtmp_relay = sim::from_millis(230);      // server relay + jitter buffer
};

/// Telephony session parameters.
struct VideoConfig {
  Resolution resolution = Resolution::k4K;
  bool dynamic_scene = false;  // moving camera: larger, burstier frames
  int fps = 30;
  PipelineCosts costs;
  tcp::TcpConfig transport;  // RTMP rides TCP
  // Adaptive bit-rate: downshift resolution when the sender backlog
  // exceeds a second of airtime, recover when it drains (the codec/
  // transport coordination the paper cites as the fix for 4G telephony).
  bool adaptive_bitrate = false;
};

/// Per-session results.
struct VideoStats {
  std::uint64_t frames_captured = 0;
  std::uint64_t frames_delivered = 0;
  int freeze_events = 0;               // long gaps at the receiver
  measure::Cdf frame_delay_s;          // capture -> rendered, seconds
  measure::Cdf frame_bytes;            // encoded frame sizes
  double mean_received_throughput_bps = 0.0;  // server-side over the session
  // Adaptive bit-rate bookkeeping.
  int downshifts = 0;
  int upshifts = 0;
  std::uint64_t frames_at_reduced_res = 0;
};

/// One uplink telephony session over `path` (phone at A, cloud at B).
class VideoTelephony {
 public:
  VideoTelephony(sim::Simulator* simulator, net::PathNetwork* path,
                 PathFanout* fanout, VideoConfig config, sim::Rng rng);
  ~VideoTelephony();

  VideoTelephony(const VideoTelephony&) = delete;
  VideoTelephony& operator=(const VideoTelephony&) = delete;

  /// Captures frames for `duration`, then stops (in-flight frames drain).
  void start(sim::Time duration);

  /// Statistics so far (call after the simulator has drained).
  [[nodiscard]] VideoStats stats() const;

  /// Server-side received-bytes series (Fig. 19's fluctuation plot).
  [[nodiscard]] const measure::TimeSeries& received_bytes_log() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fiveg::app

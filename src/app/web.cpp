#include "app/web.h"

#include <utility>

#include "app/iperf.h"
#include "obs/obs.h"

namespace fiveg::app {

std::vector<WebPage> paper_pages() {
  // Sizes and rendering costs for the Fig. 16 categories. Rendering is a
  // device-compute property (identical across RATs); sizes are typical of
  // 2019-era pages in each category.
  return {
      {"Search", 800 << 10, sim::from_millis(500)},
      {"Image", 3 << 20, sim::from_millis(1200)},
      {"Shopping", 5 << 20, sim::from_millis(1900)},
      {"Map", 6 << 20, sim::from_millis(2700)},
      {"Video", 8 << 20, sim::from_millis(2300)},
  };
}

WebPage image_page(double megabytes) {
  WebPage p;
  p.category = "Image";
  p.bytes = static_cast<std::uint64_t>(megabytes * (1 << 20));
  // Image decode/layout grows with pixel count.
  p.render_time = sim::from_millis(100.0 + 75.0 * megabytes);
  return p;
}

struct WebBrowser::Impl {
  sim::Simulator* sim;
  net::PathNetwork* path;
  PathFanout* fanout;
  tcp::TcpConfig config;
  std::uint32_t next_flow = 2000;
  std::vector<std::unique_ptr<TcpSession>> sessions;
};

WebBrowser::WebBrowser(sim::Simulator* simulator, net::PathNetwork* path,
                       PathFanout* fanout, tcp::TcpConfig config)
    : impl_(new Impl{simulator, path, fanout, config, 2000, {}}) {}

WebBrowser::~WebBrowser() = default;

namespace {

// Chains the page's object fetches over one connection: each round's data
// must be fully delivered before the next request goes out, costing a
// round trip — the HTTP dependency-chain behaviour that caps 5G's gain.
struct PageLoad : std::enable_shared_from_this<PageLoad> {
  sim::Simulator* sim = nullptr;
  TcpSession* session = nullptr;
  WebPage page;
  std::function<void(PltResult)> done;
  sim::Time start = 0;
  int rounds_left = 0;
  std::uint64_t bytes_per_round = 0;

  void begin() {
    start = sim->now();
    rounds_left = std::max(1, page.sequential_objects);
    bytes_per_round = std::max<std::uint64_t>(
        1, page.bytes / static_cast<std::uint64_t>(rounds_left));
    // TCP + TLS handshake: two tiny exchanges before any content.
    auto self = shared_from_this();
    session->sender().send_bytes(64, [self] {
      self->session->sender().send_bytes(128, [self] { self->next_round(); });
    });
  }

  void next_round() {
    auto self = shared_from_this();
    if (rounds_left == 0) {
      const double download_s = sim::to_seconds(sim->now() - start);
      const sim::Time render = page.render_time;
      sim->schedule_in(render, [self, download_s, render] {
        if (auto* m = obs::metrics()) {
          m->digest("app.web.plt_s")
              .observe(download_s + sim::to_seconds(render));
          m->digest("app.web.download_s").observe(download_s);
        }
        self->done(PltResult{download_s, sim::to_seconds(render)});
      });
      return;
    }
    --rounds_left;
    session->sender().send_bytes(bytes_per_round,
                                 [self] { self->next_round(); });
  }
};

}  // namespace

void WebBrowser::load(const WebPage& page, std::function<void(PltResult)> done) {
  // Fresh connection per page (cache/cookies cleared, as in the paper).
  auto session = std::make_unique<TcpSession>(impl_->sim, impl_->path,
                                              impl_->fanout, impl_->config,
                                              impl_->next_flow++);
  TcpSession* raw = session.get();
  impl_->sessions.push_back(std::move(session));

  auto load = std::make_shared<PageLoad>();
  load->sim = impl_->sim;
  load->session = raw;
  load->page = page;
  load->done = std::move(done);
  load->begin();
}

}  // namespace fiveg::app

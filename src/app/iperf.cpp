#include "app/iperf.h"

namespace fiveg::app {

TcpSession::TcpSession(sim::Simulator* simulator, net::PathNetwork* path,
                       PathFanout* fanout, tcp::TcpConfig config,
                       std::uint32_t flow_id) {
  sender_ = std::make_unique<tcp::TcpSender>(
      simulator, config, flow_id,
      [path](net::Packet p) { path->send_a_to_b(std::move(p)); });
  receiver_ = std::make_unique<tcp::TcpReceiver>(
      simulator, config, flow_id,
      [path](net::Packet p) { path->send_b_to_a(std::move(p)); });
  fanout->a.add(sender_.get());    // ACKs arriving back at A
  fanout->b.add(receiver_.get());  // data arriving at B
}

UdpTest::UdpTest(sim::Simulator* simulator, net::PathNetwork* path,
                 PathFanout* fanout, double rate_bps, std::uint32_t flow_id)
    : sink_(simulator, flow_id),
      source_(simulator, {flow_id, rate_bps, 1500},
              [path](net::Packet p) { path->send_a_to_b(std::move(p)); }) {
  fanout->b.add(&sink_);
}

void UdpTest::start(sim::Time duration) { source_.start(duration); }

UdpTestResult UdpTest::result(sim::Time from, sim::Time to) const {
  UdpTestResult r;
  r.packets_sent = source_.packets_sent();
  r.packets_received = sink_.packets_received();
  r.loss_ratio = sink_.loss_ratio(source_.packets_sent());
  r.mean_throughput_bps = sink_.mean_throughput_bps(from, to);
  return r;
}

}  // namespace fiveg::app

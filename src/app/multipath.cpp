#include "app/multipath.h"

#include <algorithm>
#include <vector>

namespace fiveg::app {
namespace {

// A chunk stuck this long is reinjected on the other subflow (MPTCP-style
// opportunistic retransmission): it papers over a dead or stalled path.
constexpr sim::Time kReinjectTimeout = 8 * sim::kSecond;

}  // namespace

struct MultipathTransfer::Impl {
  struct Chunk {
    std::uint64_t bytes = 0;
    bool done = false;
    bool reinjected = false;
  };

  sim::Simulator* sim = nullptr;
  Config config;
  std::unique_ptr<TcpSession> a;
  std::unique_ptr<TcpSession> b;

  std::vector<Chunk> chunks;
  std::size_t next_chunk = 0;
  std::uint64_t bytes_a = 0;
  std::uint64_t bytes_b = 0;
  int outstanding_a = 0;
  int outstanding_b = 0;
  std::function<void()> done;
  bool finished = false;

  // Pull scheduling: a subflow that finishes a chunk immediately claims
  // the next one, so the split converges to the paths' rate ratio without
  // ever estimating a rate. A watchdog reinjects chunks stuck on a dead
  // path onto the other one.
  void pump() {
    while (next_chunk < chunks.size() &&
           outstanding_a < config.chunks_in_flight_per_path) {
      assign(next_chunk++, /*to_a=*/true);
    }
    while (next_chunk < chunks.size() &&
           outstanding_b < config.chunks_in_flight_per_path) {
      assign(next_chunk++, /*to_a=*/false);
    }
    maybe_finish();
  }

  void assign(std::size_t idx, bool to_a) {
    (to_a ? outstanding_a : outstanding_b)++;
    TcpSession* session = to_a ? a.get() : b.get();
    session->sender().send_bytes(chunks[idx].bytes, [this, idx, to_a] {
      on_complete(idx, to_a);
    });
    sim->schedule_in(kReinjectTimeout, [this, idx, to_a] {
      if (!chunks[idx].done && !chunks[idx].reinjected) {
        chunks[idx].reinjected = true;
        assign(idx, !to_a);  // reinject on the other subflow
      }
    });
  }

  void on_complete(std::size_t idx, bool via_a) {
    (via_a ? outstanding_a : outstanding_b)--;
    if (!chunks[idx].done) {
      chunks[idx].done = true;
      (via_a ? bytes_a : bytes_b) += chunks[idx].bytes;
    }
    pump();
  }

  void maybe_finish() {
    if (finished || !done) return;
    for (const Chunk& c : chunks) {
      if (!c.done) return;
    }
    finished = true;
    auto cb = std::move(done);
    done = nullptr;
    cb();
  }
};

MultipathTransfer::MultipathTransfer(sim::Simulator* simulator,
                                     net::PathNetwork* path_a,
                                     PathFanout* fanout_a,
                                     net::PathNetwork* path_b,
                                     PathFanout* fanout_b, Config config)
    : impl_(new Impl) {
  impl_->sim = simulator;
  impl_->config = config;
  impl_->a = std::make_unique<TcpSession>(simulator, path_a, fanout_a,
                                          config.transport, /*flow_id=*/41);
  impl_->b = std::make_unique<TcpSession>(simulator, path_b, fanout_b,
                                          config.transport, /*flow_id=*/42);
}

MultipathTransfer::~MultipathTransfer() = default;

void MultipathTransfer::transfer(std::uint64_t bytes,
                                 std::function<void()> done) {
  impl_->chunks.clear();
  impl_->next_chunk = 0;
  impl_->finished = false;
  for (std::uint64_t off = 0; off < bytes; off += impl_->config.chunk_bytes) {
    impl_->chunks.push_back(
        {std::min(impl_->config.chunk_bytes, bytes - off), false, false});
  }
  impl_->done = std::move(done);
  impl_->pump();
}

std::uint64_t MultipathTransfer::bytes_via_a() const { return impl_->bytes_a; }
std::uint64_t MultipathTransfer::bytes_via_b() const { return impl_->bytes_b; }
bool MultipathTransfer::finished() const { return impl_->finished; }

}  // namespace fiveg::app

// ATSSS/MPTCP-style multipath transfer: one logical byte stream split
// across the 5G and 4G paths. The paper names dynamic 4G/5G switching as
// "a use case for MPTCP ... left for future exploration" — this is that
// exploration: a pull-based chunk scheduler that is rate-proportional by
// construction and rides out single-path outages (hand-offs).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "app/iperf.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "tcp/tcp_endpoint.h"

namespace fiveg::app {

/// One logical transfer over two TCP subflows.
class MultipathTransfer {
 public:
  struct Config {
    tcp::TcpConfig transport;
    std::uint64_t chunk_bytes = 512 * 1024;
    // Chunks a subflow may hold unfinished; 4 keeps the fast pipe fed
    // without head-of-line hoarding by the slow path.
    int chunks_in_flight_per_path = 4;
  };

  /// Subflow A rides `path_a` (e.g. the 5G path), subflow B `path_b`.
  MultipathTransfer(sim::Simulator* simulator, net::PathNetwork* path_a,
                    PathFanout* fanout_a, net::PathNetwork* path_b,
                    PathFanout* fanout_b, Config config);
  ~MultipathTransfer();

  MultipathTransfer(const MultipathTransfer&) = delete;
  MultipathTransfer& operator=(const MultipathTransfer&) = delete;

  /// Transfers `bytes`; `done` fires when every chunk is delivered.
  void transfer(std::uint64_t bytes, std::function<void()> done);

  /// Bytes completed per subflow (A, B).
  [[nodiscard]] std::uint64_t bytes_via_a() const;
  [[nodiscard]] std::uint64_t bytes_via_b() const;
  [[nodiscard]] bool finished() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fiveg::app

// Connected-mode DRX mechanics: given a DRX configuration and the time of
// the last data activity, decide whether the radio front-end is awake at a
// queried instant. The energy replayer evaluates this on a fine time grid
// to integrate the jagged power traces of the paper's Fig. 23.
#pragma once

#include "ran/rrc.h"
#include "sim/time.h"

namespace fiveg::ran {

/// The radio's activity level at an instant, in decreasing power order.
enum class RadioActivity {
  kTransfer,   // actively moving data
  kTailAwake,  // in the connected tail, DRX on-duration (listening)
  kTailSleep,  // in the connected tail, DRX sleeping
  kPagingAwake,  // idle, paging occasion
  kPagingSleep,  // idle, deep sleep
};

/// Evaluates DRX occupancy within the connected tail.
///
/// `since_activity`: elapsed time since the last data transfer ended.
/// Inside `inactivity` the radio stays fully awake; afterwards it cycles
/// long C-DRX (`long_drx_cycle` with `on_duration` awake) until `tail`
/// expires and RRC falls back to idle.
[[nodiscard]] RadioActivity connected_activity(const DrxConfig& drx,
                                               sim::Time since_activity);

/// Evaluates paging DRX occupancy in RRC_IDLE: awake `on_duration` out of
/// every `paging_cycle`.
[[nodiscard]] RadioActivity idle_activity(const DrxConfig& drx,
                                          sim::Time since_idle_start);

/// Fraction of time the radio is awake during the C-DRX portion of the
/// tail (the duty cycle that dominates tail energy).
[[nodiscard]] double tail_duty_cycle(const DrxConfig& drx) noexcept;

}  // namespace fiveg::ran

// The campus deployment: 13 LTE eNBs (34 sectors) and 6 co-sited NR gNBs
// (13 sectors), the NSA layout of the paper's Table 1 and Fig. 2. All
// existing gNBs share a mast with an eNB; not every eNB has a gNB — the
// asymmetry behind the paper's coverage-hole comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/campus.h"
#include "radio/link_budget.h"
#include "ran/cell.h"
#include "sim/rng.h"

namespace fiveg::ran {

/// Immutable campus network: sites, sectors and the propagation env.
class Deployment {
 public:
  Deployment(const geo::CampusMap* campus, std::uint64_t seed,
             std::vector<Cell> lte_cells, std::vector<Cell> nr_cells);

  [[nodiscard]] const geo::CampusMap& campus() const noexcept {
    return *campus_;
  }
  [[nodiscard]] const radio::RadioEnvironment& env() const noexcept {
    return env_;
  }
  [[nodiscard]] const std::vector<Cell>& cells(radio::Rat rat) const noexcept {
    return rat == radio::Rat::kLte ? lte_cells_ : nr_cells_;
  }
  [[nodiscard]] const radio::CarrierConfig& carrier(
      radio::Rat rat) const noexcept {
    return rat == radio::Rat::kLte ? lte_carrier_ : nr_carrier_;
  }

  /// Measures all cells of `rat` from `ue`.
  [[nodiscard]] std::vector<CellMeasurement> measure(
      radio::Rat rat, const geo::Point& ue) const;

  /// Scratch-buffer variant: fills `out` in place so per-sample sweeps
  /// (mobility steps, cohort baselines) stay allocation-free.
  void measure_into(radio::Rat rat, const geo::Point& ue,
                    std::vector<CellMeasurement>& out) const;

  /// Strongest cell of `rat` at `ue`.
  [[nodiscard]] CellMeasurement best(radio::Rat rat,
                                     const geo::Point& ue) const;

  /// LTE cells restricted to the sites that also host a gNB (the paper's
  /// "4G (6 eNBs)" column in Table 2).
  [[nodiscard]] std::vector<Cell> lte_cells_cosited_with_nr() const;

  /// Achievable DL bit-rate of the best `rat` cell at `ue`, bits/s,
  /// holding `prb_fraction` of the carrier. Zero outside coverage.
  [[nodiscard]] double dl_bitrate_bps(radio::Rat rat, const geo::Point& ue,
                                      double prb_fraction = 1.0) const;

  /// Number of distinct sites carrying this RAT.
  [[nodiscard]] int site_count(radio::Rat rat) const;

 private:
  const geo::CampusMap* campus_;
  radio::RadioEnvironment env_;
  radio::CarrierConfig lte_carrier_;
  radio::CarrierConfig nr_carrier_;
  std::vector<Cell> lte_cells_;
  std::vector<Cell> nr_cells_;
};

/// Builds the paper's deployment on `campus`: 13 eNB sites on a jittered
/// grid, `gnb_sites` of which (spread out, default 6) also host a gNB;
/// 34 LTE sectors and 2-3 NR sectors per gNB with paper-matching PCIs
/// (60.. for NR). `gnb_sites` > 6 models the densification the paper says
/// would close the coverage holes; it is capped at the 13 eNB masts.
[[nodiscard]] Deployment make_deployment(const geo::CampusMap* campus,
                                         sim::Rng rng, int gnb_sites = 6);

/// Hex-grid city layout, the calibrated multi-cell reference geometry
/// (3GPP-style rings around a centre site).
struct CityGridConfig {
  double isd_m = 200.0;  // inter-site distance between hex neighbours
  int rings = 2;         // rings around the centre: sites = 1+3r(r+1)
  int lte_sectors_per_site = 3;
  int nr_sectors_per_site = 3;
};

/// The mast positions of a hex grid centred on `center`: the centre site
/// plus `rings` full rings at `isd_m` spacing, in deterministic axial
/// (q-major) order. rings=1 -> 7 sites, rings=2 -> 19 sites.
[[nodiscard]] std::vector<geo::Point> hex_grid_sites(geo::Point center,
                                                     double isd_m, int rings);

/// Builds a city-scale deployment on `campus`: every hex mast carries both
/// an eNB and a co-sited gNB (the densified NSA grid), with
/// `lte_sectors_per_site` / `nr_sectors_per_site` sectors at jittered
/// azimuths. PCIs start at 300 (LTE) and 500 (NR), clear of the paper
/// campus ranges. Deterministic for a given rng stream.
[[nodiscard]] Deployment make_city_deployment(
    const geo::CampusMap* campus, sim::Rng rng,
    const CityGridConfig& config = {});

}  // namespace fiveg::ran

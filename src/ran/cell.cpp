#include "ran/cell.h"

#include <cmath>

#include "obs/obs.h"
#include "radio/mcs.h"
#include "radio/units.h"

namespace fiveg::ran {

namespace {

// Serving-cell KPI digests, labeled by RAT. Observing only the selected
// cell (not every candidate) keeps the cost bounded by one digest insert
// per best_cell() call; the canonical names are built once.
void observe_serving_cell(const radio::CarrierConfig& carrier,
                          const CellMeasurement& m) {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr || m.cell == nullptr) return;
  static const std::string kRsrpNr =
      obs::labeled("radio.rsrp_dbm", {{"rat", "nr"}});
  static const std::string kRsrpLte =
      obs::labeled("radio.rsrp_dbm", {{"rat", "lte"}});
  static const std::string kSinrNr =
      obs::labeled("radio.sinr_db", {{"rat", "nr"}});
  static const std::string kSinrLte =
      obs::labeled("radio.sinr_db", {{"rat", "lte"}});
  static const std::string kCqiNr = obs::labeled("radio.cqi", {{"rat", "nr"}});
  static const std::string kCqiLte =
      obs::labeled("radio.cqi", {{"rat", "lte"}});
  const bool nr = carrier.rat == radio::Rat::kNr;
  reg->digest(nr ? kRsrpNr : kRsrpLte).observe(m.rsrp_dbm);
  reg->digest(nr ? kSinrNr : kSinrLte).observe(m.sinr_db);
  reg->digest(nr ? kCqiNr : kCqiLte)
      .observe(static_cast<double>(radio::cqi_from_sinr(m.sinr_db)));
}

}  // namespace

bool CellMeasurement::in_coverage() const noexcept {
  return cell != nullptr && rsrp_dbm >= radio::kServiceRsrpFloorDbm;
}

std::vector<CellMeasurement> measure_cells(
    const radio::RadioEnvironment& env, const radio::CarrierConfig& carrier,
    const std::vector<Cell>& cells, const geo::Point& ue,
    double interferer_load) {
  // Batched RSRP: the per-UE link-budget terms are evaluated once for the
  // whole cell list and co-sited sectors share their geometry terms. Every
  // other cell interferes with each one, so SINR falls out of the running
  // total (keeps a 34-cell sweep O(n)).
  // Scratch buffer reused across calls (coverage sweeps call this once per
  // sample); it is fully rewritten each call, so results don't depend on it.
  static thread_local std::vector<double> rsrp;
  env.rsrp_dbm_all(
      carrier, cells.begin(), cells.end(),
      [](const Cell& c) -> const radio::TxSite& { return c.site; }, ue, rsrp);
  std::vector<CellMeasurement> out(cells.size());
  double total_linear_mw = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i].cell = &cells[i];
    out[i].rsrp_dbm = rsrp[i];
    const double lin = radio::db_to_linear(rsrp[i]);
    rsrp[i] = lin;  // dBm values now live in `out`; reuse as linear mW
    total_linear_mw += lin;
  }
  const double noise_mw = radio::db_to_linear(carrier.noise_per_re_dbm());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double interference =
        interferer_load * (total_linear_mw - rsrp[i]);
    out[i].sinr_db = radio::linear_to_db(rsrp[i] / (noise_mw + interference));
    out[i].rsrq_db = radio::rsrq_db_from_sinr(out[i].sinr_db);
  }
  return out;
}

CellMeasurement best_cell(const radio::RadioEnvironment& env,
                          const radio::CarrierConfig& carrier,
                          const std::vector<Cell>& cells, const geo::Point& ue,
                          double interferer_load) {
  CellMeasurement best;
  for (const CellMeasurement& m :
       measure_cells(env, carrier, cells, ue, interferer_load)) {
    if (best.cell == nullptr || m.rsrp_dbm > best.rsrp_dbm) best = m;
  }
  observe_serving_cell(carrier, best);
  return best;
}

}  // namespace fiveg::ran

#include "ran/cell.h"

#include <cmath>

#include "obs/obs.h"
#include "radio/mcs.h"
#include "radio/units.h"

namespace fiveg::ran {

namespace {

// Serving-cell KPI digests, labeled by RAT. Observing only the selected
// cell (not every candidate) keeps the cost bounded by one digest insert
// per best_cell() call; the canonical names are built once.
void observe_serving_cell(const radio::CarrierConfig& carrier,
                          const CellMeasurement& m) {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr || m.cell == nullptr) return;
  static const std::string kRsrpNr =
      obs::labeled("radio.rsrp_dbm", {{"rat", "nr"}});
  static const std::string kRsrpLte =
      obs::labeled("radio.rsrp_dbm", {{"rat", "lte"}});
  static const std::string kSinrNr =
      obs::labeled("radio.sinr_db", {{"rat", "nr"}});
  static const std::string kSinrLte =
      obs::labeled("radio.sinr_db", {{"rat", "lte"}});
  static const std::string kCqiNr = obs::labeled("radio.cqi", {{"rat", "nr"}});
  static const std::string kCqiLte =
      obs::labeled("radio.cqi", {{"rat", "lte"}});
  const bool nr = carrier.rat == radio::Rat::kNr;
  reg->digest(nr ? kRsrpNr : kRsrpLte).observe(m.rsrp_dbm);
  reg->digest(nr ? kSinrNr : kSinrLte).observe(m.sinr_db);
  reg->digest(nr ? kCqiNr : kCqiLte)
      .observe(static_cast<double>(radio::cqi_from_sinr(m.sinr_db)));
}

}  // namespace

bool CellMeasurement::in_coverage() const noexcept {
  return cell != nullptr && rsrp_dbm >= radio::kServiceRsrpFloorDbm;
}

void derive_interference(const double* rsrp_dbm, double* lin_scratch,
                         std::size_t n, double noise_per_re_dbm,
                         double interferer_load, double* sinr_db,
                         double* rsrq_db) {
  // Every other cell interferes with each one, so SINR falls out of the
  // running total (keeps a 34-cell sweep O(n)). Both loops are the
  // original measure_cells() arithmetic, index order included.
  double total_linear_mw = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lin = radio::db_to_linear(rsrp_dbm[i]);
    lin_scratch[i] = lin;
    total_linear_mw += lin;
  }
  const double noise_mw = radio::db_to_linear(noise_per_re_dbm);
  for (std::size_t i = 0; i < n; ++i) {
    const double interference =
        interferer_load * (total_linear_mw - lin_scratch[i]);
    sinr_db[i] =
        radio::linear_to_db(lin_scratch[i] / (noise_mw + interference));
    rsrq_db[i] = radio::rsrq_db_from_sinr(sinr_db[i]);
  }
}

void measure_cells(const radio::RadioEnvironment& env,
                   const radio::CarrierConfig& carrier,
                   const std::vector<Cell>& cells, const geo::Point& ue,
                   double interferer_load, std::vector<CellMeasurement>& out) {
  // Batched RSRP: the per-UE link-budget terms are evaluated once for the
  // whole cell list and co-sited sectors share their geometry terms.
  // Scratch buffers are reused across calls (coverage sweeps call this
  // once per sample) and fully rewritten, so results don't depend on them.
  static thread_local std::vector<double> rsrp;
  static thread_local std::vector<double> lin;
  static thread_local std::vector<double> sinr;
  static thread_local std::vector<double> rsrq;
  env.rsrp_dbm_all(
      carrier, cells.begin(), cells.end(),
      [](const Cell& c) -> const radio::TxSite& { return c.site; }, ue, rsrp);
  const std::size_t n = cells.size();
  lin.resize(n);
  sinr.resize(n);
  rsrq.resize(n);
  derive_interference(rsrp.data(), lin.data(), n, carrier.noise_per_re_dbm(),
                      interferer_load, sinr.data(), rsrq.data());
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].cell = &cells[i];
    out[i].rsrp_dbm = rsrp[i];
    out[i].rsrq_db = rsrq[i];
    out[i].sinr_db = sinr[i];
  }
}

std::vector<CellMeasurement> measure_cells(
    const radio::RadioEnvironment& env, const radio::CarrierConfig& carrier,
    const std::vector<Cell>& cells, const geo::Point& ue,
    double interferer_load) {
  std::vector<CellMeasurement> out;
  measure_cells(env, carrier, cells, ue, interferer_load, out);
  return out;
}

void measure_cells_row(const radio::RadioEnvironment& env,
                       const radio::CarrierConfig& carrier,
                       const radio::SectorPlan& plan, const geo::Point& pos,
                       double interferer_load, double* rsrp_dbm,
                       double* sinr_db, double* rsrq_db,
                       double* lin_scratch) {
  env.rsrp_dbm_all_planned(carrier, plan, pos, rsrp_dbm);
  derive_interference(rsrp_dbm, lin_scratch, plan.size(),
                      carrier.noise_per_re_dbm(), interferer_load, sinr_db,
                      rsrq_db);
}

void measure_cells_batch(const radio::RadioEnvironment& env,
                         const radio::CarrierConfig& carrier,
                         const radio::SectorPlan& plan,
                         const geo::Point* positions,
                         const std::uint32_t* order, std::size_t n_ue,
                         double interferer_load, double* rsrp_dbm,
                         double* sinr_db, double* rsrq_db) {
  static thread_local std::vector<double> lin;
  const std::size_t n = plan.size();
  lin.resize(n);
  for (std::size_t k = 0; k < n_ue; ++k) {
    const std::size_t u = order != nullptr ? order[k] : k;
    measure_cells_row(env, carrier, plan, positions[u], interferer_load,
                      rsrp_dbm + u * n, sinr_db + u * n, rsrq_db + u * n,
                      lin.data());
  }
}

CellMeasurement best_cell(const radio::RadioEnvironment& env,
                          const radio::CarrierConfig& carrier,
                          const std::vector<Cell>& cells, const geo::Point& ue,
                          double interferer_load) {
  static thread_local std::vector<CellMeasurement> scratch;
  measure_cells(env, carrier, cells, ue, interferer_load, scratch);
  CellMeasurement best;
  for (const CellMeasurement& m : scratch) {
    if (best.cell == nullptr || m.rsrp_dbm > best.rsrp_dbm) best = m;
  }
  observe_serving_cell(carrier, best);
  return best;
}

}  // namespace fiveg::ran

// City-scale UE core: one cohort holds the state of N UEs in contiguous
// structure-of-arrays form (positions, serving-cell indices, A3/NSA dwell
// clocks, RRC phase) and advances all of them with one batched sweep per
// sample period — a single labeled "ran.cohort_sweep" event instead of N
// per-UE mobility events.
//
// The measurement half fills flat per-RAT rows (rsrp/sinr/rsrq, one value
// per (UE, cell)) through the precompiled radio::SectorPlan, walking UEs
// in spatial-index order for memo/cache locality. Rows are pure functions
// of (UE position bits, fault coverage offset), so a row whose key is
// unchanged since the last sweep is reused verbatim — exact, because a
// recompute would bit-identically reproduce it — and every computed value
// matches the scalar ran::measure_cells() path bit for bit (property
// tested in tests/cohort_test.cpp).
//
// The trigger half iterates UEs in index order (so hand-off latency draws
// consume the cohort's single RNG in a deterministic sequence) and applies
// the same pure helpers as the per-UE engine: a3_step for horizontal
// hand-offs, nsa_step for NR leg add/drop. Cohort semantics are
// deliberately simpler than HandoffEngine's event interleaving: a trigger
// applies the serving change immediately and blanks the UE's trigger
// evaluation until the sampled signalling latency elapses. Per-UE KPIs
// never become per-UE series — they aggregate into {cohort=<name>}-labeled
// digests and counters via obs::metrics().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "geo/route.h"
#include "ran/deployment.h"
#include "ran/measurement_events.h"
#include "ran/nsa_signaling.h"
#include "ran/rrc.h"
#include "ran/ue.h"
#include "sim/lane.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace fiveg::ran {

/// Cohort-wide sampling and trigger configuration.
struct CohortConfig {
  std::string name = "cohort";  // digest/counter label value
  sim::Time sample_period = sim::from_millis(200);
  A3Config a3;
  NsaUe::Config nsa;
  double interferer_load = 0.5;
  // Partition affinity (sim::ParSim lane index). Default: unpinned. A
  // pinned cohort verifies at every sweep that it is executing on its
  // declared lane — the cheap guard against accidentally scheduling a
  // partition's work onto a foreign timeline, where its lane-local
  // metric handles and fault runtime would race.
  int domain = sim::kNoLane;
};

/// A batch of UEs stepped together against one Deployment.
class UeCohort {
 public:
  /// Flat per-RAT measurement rows: the value for (ue, cell) lives at
  /// [ue * n_cells + cell], cells indexed as in Deployment::cells(rat).
  struct MeasBlock {
    radio::SectorPlan plan;
    std::size_t n_cells = 0;
    std::vector<double> rsrp_dbm, sinr_db, rsrq_db;
    // Row-cache keys: exact position bit patterns and the fault coverage
    // offset the row was computed under. A key match means a recompute
    // would return the identical bits, so the row is reused as-is.
    std::vector<std::uint64_t> key_x, key_y;
    std::vector<double> key_offset_db;
    std::vector<std::uint8_t> valid;
  };

  /// Deterministic sweep accounting (pure function of the run).
  struct Stats {
    std::uint64_t sweeps = 0;
    std::uint64_t rows_computed = 0;
    std::uint64_t rows_reused = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t a3_triggers = 0;
    std::uint64_t vertical_handoffs = 0;
  };

  /// `deployment` must outlive the cohort. The cohort owns one RNG; all
  /// its draws happen in UE-index order during the trigger phase.
  UeCohort(const Deployment* deployment, CohortConfig config, sim::Rng rng);

  /// Adds a stationary UE at `pos`; returns its stable index.
  int add_stationary(geo::Point pos);

  /// Adds a UE walking/driving `route` at `speed_mps` from sweep start;
  /// the route is held at its end once exhausted. Returns the UE index.
  int add_route(geo::Route route, double speed_mps);

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }
  [[nodiscard]] const CohortConfig& config() const noexcept {
    return config_;
  }

  /// Moves every routed UE to its position at `at`.
  void advance_positions(sim::Time at);

  /// Fills (or reuses) every UE's measurement row for `rat`.
  const MeasBlock& measure_batch(radio::Rat rat);

  /// One full sweep at `now`: positions, both RAT measurement batches,
  /// then the per-UE trigger phase in index order.
  void sweep(sim::Time now);

  /// Schedules one labeled "ran.cohort_sweep" event per sample period on
  /// `simulator`, starting now and stopping after `until`.
  void start(sim::Simulator* simulator, sim::Time until);

  // --- inspection (tests, experiments) ---
  [[nodiscard]] geo::Point position(std::size_t ue) const {
    return {x_[ue], y_[ue]};
  }
  [[nodiscard]] const MeasBlock& block(radio::Rat rat) const noexcept {
    return rat == radio::Rat::kLte ? lte_ : nr_;
  }
  /// Serving cell index into Deployment::cells(rat), -1 when unattached.
  [[nodiscard]] int serving_cell(radio::Rat rat, std::size_t ue) const {
    return rat == radio::Rat::kLte ? serving_lte_[ue] : serving_nr_[ue];
  }
  [[nodiscard]] bool nr_attached(std::size_t ue) const {
    return serving_nr_[ue] >= 0;
  }
  [[nodiscard]] RrcState rrc_state(std::size_t ue) const {
    return static_cast<RrcState>(rrc_[ue]);
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] bool cell_live(const Cell& cell) const noexcept {
    return fault_ == nullptr || !fault_->cell_down(cell.pci);
  }
  void fill_row(radio::Rat rat, MeasBlock& block, std::size_t ue);
  void build_sweep_order();
  void trigger_phase(sim::Time now);
  void apply_handoff(std::size_t ue, HandoffType type, int target,
                     sim::Time now);
  /// Best live LTE cell co-sited with `site_id` from this sweep's rows;
  /// falls back to the UE's current anchor.
  [[nodiscard]] int anchor_for(std::size_t ue, int site_id) const;
  void note_rrc(std::size_t ue);
  void tick(sim::Simulator* simulator, sim::Time until);

  const Deployment* dep_;
  CohortConfig config_;
  sim::Rng rng_;
  fault::Runtime* fault_;
  sim::Time start_time_ = 0;  // routes anchor here (set by start())

  // --- SoA per-UE state (all arrays share the UE index) ---
  std::vector<double> x_, y_;
  std::vector<std::int32_t> route_id_;  // -1 = stationary
  std::vector<double> speed_mps_;
  std::vector<std::int32_t> serving_lte_, serving_nr_;  // cell idx, -1 none
  std::vector<sim::Time> a3_since_;
  std::vector<sim::Time> nsa_add_since_, nsa_drop_since_;
  std::vector<sim::Time> ho_busy_until_;
  std::vector<std::uint8_t> rrc_;

  std::vector<geo::Route> routes_;

  MeasBlock lte_, nr_;
  std::vector<std::uint32_t> sweep_order_;
  std::vector<std::uint64_t> order_keys_;
  std::vector<double> lin_scratch_;

  Stats stats_;

  // Canonical {cohort=...}-labeled metric names, built once.
  std::string sweep_counter_;
  std::string rows_computed_counter_, rows_reused_counter_;
  std::string a3_counter_;
  std::string rsrp_digest_lte_, rsrp_digest_nr_;
  std::string sinr_digest_lte_, sinr_digest_nr_;
  std::string nr_attached_gauge_;
  std::string ho_counter_[4];
  std::string ho_latency_digest_[4];
};

}  // namespace fiveg::ran

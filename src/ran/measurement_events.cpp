#include "ran/measurement_events.h"

namespace fiveg::ran {

std::string describe(MeasEventType t) {
  switch (t) {
    case MeasEventType::kA1:
      return "Serving cell quality above threshold (stop neighbour search)";
    case MeasEventType::kA2:
      return "Serving cell quality below threshold (start neighbour search)";
    case MeasEventType::kA3:
      return "Neighbour better than serving by an offset for a period "
             "(the main hand-off trigger)";
    case MeasEventType::kA4:
      return "Neighbour quality above a fixed threshold";
    case MeasEventType::kA5:
      return "Serving below threshold1 while neighbour above threshold2";
    case MeasEventType::kB1:
      return "Inter-RAT neighbour quality above a fixed threshold";
    case MeasEventType::kB2:
      return "Serving below threshold1 while inter-RAT neighbour above "
             "threshold2";
  }
  return "unknown";
}

bool ThresholdDetector::update(sim::Time at, double quality_db) {
  if (!armed_) {
    if (lapsed(quality_db)) armed_ = true;
    entering_since_ = kNotEntering;
    return false;
  }
  if (!entered(quality_db)) {
    entering_since_ = kNotEntering;
    return false;
  }
  if (entering_since_ == kNotEntering) entering_since_ = at;
  if (at - entering_since_ >= time_to_trigger_) {
    entering_since_ = kNotEntering;
    armed_ = false;  // one report per excursion
    return true;
  }
  return false;
}

bool A5Detector::update(sim::Time at, double serving_db, double neighbor_db) {
  const bool entered =
      serving_db < threshold1_db_ && neighbor_db > threshold2_db_;
  if (!armed_) {
    if (!entered) armed_ = true;
    entering_since_ = kNotEntering;
    return false;
  }
  if (!entered) {
    entering_since_ = kNotEntering;
    return false;
  }
  if (entering_since_ == kNotEntering) entering_since_ = at;
  if (at - entering_since_ >= time_to_trigger_) {
    entering_since_ = kNotEntering;
    armed_ = false;
    return true;
  }
  return false;
}

bool a3_step(const A3Config& config, sim::Time& entering_since, sim::Time at,
             double serving_db, double neighbor_db) noexcept {
  const bool entering =
      neighbor_db - config.hysteresis_db > serving_db + config.offset_db;
  if (!entering) {
    entering_since = kA3NotEntering;
    return false;
  }
  if (entering_since == kA3NotEntering) entering_since = at;
  if (at - entering_since >= config.time_to_trigger) {
    entering_since = kA3NotEntering;
    return true;
  }
  return false;
}

bool A3Detector::update(sim::Time at, double serving_db, double neighbor_db) {
  return a3_step(config_, entering_since_, at, serving_db, neighbor_db);
}

}  // namespace fiveg::ran

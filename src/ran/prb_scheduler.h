// PRB allocation model. All users of a cell share its physical resource
// blocks; the paper finds the probe UE gets essentially all NR PRBs
// (260-264 of 264) day and night — 5G was nearly empty — while on LTE it
// gets 40-85 PRBs by day and 95-100 at night.
#pragma once

#include "radio/carrier.h"
#include "sim/rng.h"

namespace fiveg::ran {

/// Daytime vs late-night load regimes from the paper's Sec. 4.1.
enum class LoadRegime { kDay, kNight };

/// Round-robin PRB scheduler for one cell.
class PrbScheduler {
 public:
  /// `competing_users`: other active users sharing the carrier.
  PrbScheduler(radio::CarrierConfig carrier, int competing_users);

  /// PRB fraction granted to the probe UE for one scheduling epoch
  /// (jittered around the fair share).
  [[nodiscard]] double grant_fraction(sim::Rng& rng) const;

  [[nodiscard]] int competing_users() const noexcept {
    return competing_users_;
  }

 private:
  radio::CarrierConfig carrier_;
  int competing_users_;
};

/// The paper's observed PRB share for a RAT/regime: NR ~ 1.0 always;
/// LTE day ~ 0.40-0.85, LTE night ~ 0.95-1.0.
[[nodiscard]] double observed_prb_fraction(radio::Rat rat, LoadRegime regime,
                                           sim::Rng& rng);

/// Number of competing users consistent with the observed shares, used to
/// configure schedulers in end-to-end experiments.
[[nodiscard]] int typical_competing_users(radio::Rat rat, LoadRegime regime);

}  // namespace fiveg::ran

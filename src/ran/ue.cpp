#include "ran/ue.h"

namespace fiveg::ran {

std::optional<HandoffType> NsaUe::update(sim::Time at,
                                         double best_nr_rsrp_dbm) {
  if (!nr_attached_) {
    drop_dwell_since_ = kNotDwelling;
    const bool addable =
        best_nr_rsrp_dbm >= config_.service_floor_dbm + config_.add_margin_db;
    if (!addable) {
      add_dwell_since_ = kNotDwelling;
      return std::nullopt;
    }
    if (add_dwell_since_ == kNotDwelling) add_dwell_since_ = at;
    if (at - add_dwell_since_ >= config_.time_to_trigger) {
      add_dwell_since_ = kNotDwelling;
      return HandoffType::k4G5G;
    }
    return std::nullopt;
  }

  add_dwell_since_ = kNotDwelling;
  const bool lost = best_nr_rsrp_dbm < config_.service_floor_dbm;
  if (!lost) {
    drop_dwell_since_ = kNotDwelling;
    return std::nullopt;
  }
  if (drop_dwell_since_ == kNotDwelling) drop_dwell_since_ = at;
  if (at - drop_dwell_since_ >= config_.time_to_trigger) {
    drop_dwell_since_ = kNotDwelling;
    return HandoffType::k5G4G;
  }
  return std::nullopt;
}

void NsaUe::complete(HandoffType t) noexcept {
  if (t == HandoffType::k4G5G) nr_attached_ = true;
  if (t == HandoffType::k5G4G) nr_attached_ = false;
}

}  // namespace fiveg::ran

#include "ran/ue.h"

namespace fiveg::ran {

std::optional<HandoffType> nsa_step(const NsaUe::Config& config,
                                    bool nr_attached,
                                    sim::Time& add_dwell_since,
                                    sim::Time& drop_dwell_since, sim::Time at,
                                    double best_nr_rsrp_dbm) noexcept {
  if (!nr_attached) {
    drop_dwell_since = kNsaNotDwelling;
    const bool addable =
        best_nr_rsrp_dbm >= config.service_floor_dbm + config.add_margin_db;
    if (!addable) {
      add_dwell_since = kNsaNotDwelling;
      return std::nullopt;
    }
    if (add_dwell_since == kNsaNotDwelling) add_dwell_since = at;
    if (at - add_dwell_since >= config.time_to_trigger) {
      add_dwell_since = kNsaNotDwelling;
      return HandoffType::k4G5G;
    }
    return std::nullopt;
  }

  add_dwell_since = kNsaNotDwelling;
  const bool lost = best_nr_rsrp_dbm < config.service_floor_dbm;
  if (!lost) {
    drop_dwell_since = kNsaNotDwelling;
    return std::nullopt;
  }
  if (drop_dwell_since == kNsaNotDwelling) drop_dwell_since = at;
  if (at - drop_dwell_since >= config.time_to_trigger) {
    drop_dwell_since = kNsaNotDwelling;
    return HandoffType::k5G4G;
  }
  return std::nullopt;
}

std::optional<HandoffType> NsaUe::update(sim::Time at,
                                         double best_nr_rsrp_dbm) {
  return nsa_step(config_, nr_attached_, add_dwell_since_, drop_dwell_since_,
                  at, best_nr_rsrp_dbm);
}

void NsaUe::complete(HandoffType t) noexcept {
  if (t == HandoffType::k4G5G) nr_attached_ = true;
  if (t == HandoffType::k5G4G) nr_attached_ = false;
}

}  // namespace fiveg::ran

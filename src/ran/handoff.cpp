#include "ran/handoff.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/obs.h"

namespace fiveg::ran {

HandoffEngine::HandoffEngine(sim::Simulator* simulator,
                             const Deployment* deployment,
                             MobilityConfig config, sim::Rng rng,
                             measure::KpiLogger* logger)
    : sim_(simulator),
      dep_(deployment),
      config_(config),
      rng_(rng),
      log_(logger),
      nsa_(config.nsa),
      a3_nr_(config.a3),
      a3_lte_(config.a3) {
  fault_ = fault::runtime();
}

void HandoffEngine::start(geo::Route route) {
  route_ = std::move(route);
  route_start_ = sim_->now();

  // Initial attachment: camp on the best LTE cell; the NSA controller will
  // add the NR leg on its own dwell timer.
  const geo::Point pos = position_at(sim_->now());
  const CellMeasurement best_lte = dep_->best(radio::Rat::kLte, pos);
  lte_ = best_lte.cell;
  nr_ = nullptr;
  // Under fault injection the best cell may already be in outage; camp on
  // the strongest live one instead.
  if (fault_ != nullptr && lte_ != nullptr && fault_->cell_down(lte_->pci)) {
    lte_ = nullptr;
    double best_rsrp = -1e9;
    for (const CellMeasurement& m : dep_->measure(radio::Rat::kLte, pos)) {
      if (fault_->cell_down(m.cell->pci)) continue;
      if (lte_ == nullptr || m.rsrp_dbm > best_rsrp) {
        lte_ = m.cell;
        best_rsrp = m.rsrp_dbm;
      }
    }
  }
  note_rrc_state();

  sim_->schedule_in(0, "ran.mobility_step", [this] { step(); });
}

geo::Point HandoffEngine::position_at(sim::Time at) const {
  assert(route_.has_value());
  const double walked =
      config_.speed_mps * sim::to_seconds(std::max<sim::Time>(at - route_start_, 0));
  return route_->position_at(walked);
}

bool HandoffEngine::data_interrupted(sim::Time at) const noexcept {
  // Interruptions are appended in time order and never overlap (only one
  // hand-off runs at a time), so binary-search the latest one starting at
  // or before `at`.
  const auto it = std::upper_bound(
      interruptions_.begin(), interruptions_.end(), at,
      [](sim::Time t, const Interruption& i) { return t < i.begin; });
  if (it == interruptions_.begin()) {
    return serving_gap_at(at);
  }
  return at < std::prev(it)->end || serving_gap_at(at);
}

bool HandoffEngine::serving_gap_at(sim::Time at) const noexcept {
  for (const ServingGap& g : gaps_) {
    if (at >= g.begin && (g.end < 0 || at < g.end)) return true;
  }
  return false;
}

const Cell* HandoffEngine::anchor_for(const Cell& nr_cell,
                                      const geo::Point& ue) const {
  const Cell* best = nullptr;
  double best_rsrp = -1e9;
  for (const Cell& c : dep_->cells(radio::Rat::kLte)) {
    if (c.site_id != nr_cell.site_id) continue;
    // An anchor in (injected) outage cannot host the leg; keep the current
    // live anchor rather than re-attaching to a dead cell.
    if (fault_ != nullptr && fault_->cell_down(c.pci)) continue;
    const double rsrp =
        dep_->env().rsrp_dbm(dep_->carrier(radio::Rat::kLte), c.site, ue);
    if (best == nullptr || rsrp > best_rsrp) {
      best = &c;
      best_rsrp = rsrp;
    }
  }
  return best != nullptr ? best : lte_;
}

void HandoffEngine::log_kpis(const geo::Point& ue,
                             const std::vector<CellMeasurement>& lte_meas,
                             const std::vector<CellMeasurement>& nr_meas) {
  if (log_ == nullptr) return;
  const sim::Time now = sim_->now();
  log_->log("ue_x_m", now, ue.x);
  log_->log("ue_y_m", now, ue.y);
  const auto log_rat = [&](const char* prefix, const Cell* serving,
                           const std::vector<CellMeasurement>& meas) {
    const CellMeasurement* sm = nullptr;
    const CellMeasurement* best_other = nullptr;
    for (const CellMeasurement& m : meas) {
      if (m.cell == serving) {
        sm = &m;
      } else if (best_other == nullptr || m.rsrq_db > best_other->rsrq_db) {
        best_other = &m;
      }
    }
    if (sm != nullptr) {
      log_->log(std::string(prefix) + "_serving_rsrp_dbm", now, sm->rsrp_dbm);
      log_->log(std::string(prefix) + "_serving_rsrq_db", now, sm->rsrq_db);
      log_->log(std::string(prefix) + "_serving_pci", now, sm->cell->pci);
    }
    if (best_other != nullptr) {
      log_->log(std::string(prefix) + "_neighbor_rsrq_db", now,
                best_other->rsrq_db);
      log_->log(std::string(prefix) + "_neighbor_pci", now,
                best_other->cell->pci);
    }
  };
  log_rat("lte", lte_, lte_meas);
  log_rat("nr", nr_, nr_meas);
}

void HandoffEngine::step() {
  const sim::Time now = sim_->now();
  const double walked = config_.speed_mps * sim::to_seconds(now - route_start_);
  if (walked > route_->length_m()) return;  // route done: stop sampling

  const geo::Point pos = route_->position_at(walked);
  dep_->measure_into(radio::Rat::kLte, pos, lte_meas_);
  dep_->measure_into(radio::Rat::kNr, pos, nr_meas_);
  const auto& lte_meas = lte_meas_;
  const auto& nr_meas = nr_meas_;
  log_kpis(pos, lte_meas, nr_meas);

  if (fault_ != nullptr && !ho_in_progress_ && !reestablishing_) {
    handle_outages();
  }
  if (reestablishing_) {
    // No serving cell: nothing to hand off until re-establishment lands.
    sim_->schedule_in(config_.sample_period, "ran.mobility_step",
                      [this] { step(); });
    return;
  }

  if (!ho_in_progress_) {
    // --- Vertical transitions (NSA leg add/drop) ---
    const CellMeasurement* best_nr = nullptr;
    for (const CellMeasurement& m : nr_meas) {
      if (best_nr == nullptr || m.rsrp_dbm > best_nr->rsrp_dbm) best_nr = &m;
    }
    const double best_nr_rsrp = best_nr != nullptr ? best_nr->rsrp_dbm : -140.0;
    if (const auto vertical = nsa_.update(now, best_nr_rsrp)) {
      if (*vertical == HandoffType::k4G5G) {
        double before = -25.0;
        for (const CellMeasurement& m : lte_meas) {
          if (m.cell == lte_) before = m.rsrq_db;
        }
        begin_handoff(HandoffType::k4G5G, lte_, best_nr->cell, before);
      } else {
        double before = -25.0;
        for (const CellMeasurement& m : nr_meas) {
          if (m.cell == nr_) before = m.rsrq_db;
        }
        begin_handoff(HandoffType::k5G4G, nr_, lte_, before);
      }
    } else if (nr_ != nullptr) {
      // --- Horizontal 5G-5G via A3 on RSRQ ---
      const CellMeasurement* serving = nullptr;
      const CellMeasurement* neighbor = nullptr;
      for (const CellMeasurement& m : nr_meas) {
        if (m.cell == nr_) {
          serving = &m;
        } else if (neighbor == nullptr || m.rsrq_db > neighbor->rsrq_db) {
          neighbor = &m;
        }
      }
      if (serving != nullptr && neighbor != nullptr &&
          a3_nr_.update(now, serving->rsrq_db, neighbor->rsrq_db)) {
        if (log_ != nullptr) {
          log_->log_event(now, "A3_TRIGGER",
                          "nr pci=" + std::to_string(serving->cell->pci) +
                              " -> pci=" + std::to_string(neighbor->cell->pci));
        }
        if (auto* t = obs::tracer()) {
          t->instant(now, "ran.a3_trigger", "ran",
                     {{"rat", "nr"},
                      {"serving_pci", std::to_string(serving->cell->pci)},
                      {"neighbor_pci", std::to_string(neighbor->cell->pci)}});
        }
        if (auto* m = obs::metrics()) m->counter("ran.a3_triggers").add();
        begin_handoff(HandoffType::k5G5G, nr_, neighbor->cell,
                      serving->rsrq_db);
      }
    } else {
      // --- Horizontal 4G-4G via A3 on RSRQ ---
      const CellMeasurement* serving = nullptr;
      const CellMeasurement* neighbor = nullptr;
      for (const CellMeasurement& m : lte_meas) {
        if (m.cell == lte_) {
          serving = &m;
        } else if (neighbor == nullptr || m.rsrq_db > neighbor->rsrq_db) {
          neighbor = &m;
        }
      }
      if (serving != nullptr && neighbor != nullptr &&
          a3_lte_.update(now, serving->rsrq_db, neighbor->rsrq_db)) {
        if (log_ != nullptr) {
          log_->log_event(now, "A3_TRIGGER",
                          "lte pci=" + std::to_string(serving->cell->pci) +
                              " -> pci=" + std::to_string(neighbor->cell->pci));
        }
        if (auto* t = obs::tracer()) {
          t->instant(now, "ran.a3_trigger", "ran",
                     {{"rat", "lte"},
                      {"serving_pci", std::to_string(serving->cell->pci)},
                      {"neighbor_pci", std::to_string(neighbor->cell->pci)}});
        }
        if (auto* m = obs::metrics()) m->counter("ran.a3_triggers").add();
        begin_handoff(HandoffType::k4G4G, lte_, neighbor->cell,
                      serving->rsrq_db);
      }
    }
  }

  sim_->schedule_in(config_.sample_period, "ran.mobility_step",
                    [this] { step(); });
}

void HandoffEngine::begin_handoff(HandoffType type, const Cell* from,
                                  const Cell* to, double quality_before_db) {
  ho_in_progress_ = true;
  a3_nr_.reset();
  a3_lte_.reset();

  const sim::Time latency = sample_handoff_latency(type, rng_);
  HandoffRecord rec;
  rec.trigger_at = sim_->now();
  rec.type = type;
  rec.from_pci = from != nullptr ? from->pci : -1;
  rec.to_pci = to != nullptr ? to->pci : -1;
  rec.latency = latency;
  rec.quality_before_db = quality_before_db;
  records_.push_back(rec);
  interruptions_.push_back({sim_->now(), sim_->now() + latency, type});

  if (log_ != nullptr) {
    log_->log_event(sim_->now(), "HO_START",
                    to_string(type) + " " + std::to_string(rec.from_pci) +
                        " -> " + std::to_string(rec.to_pci));
  }
  // A hand-off leg is a genuine simulated-time span: begin at the trigger,
  // end at signalling completion. Legs never overlap (one hand-off at a
  // time), so Chrome's per-track B/E nesting holds.
  if (auto* t = obs::tracer()) {
    t->begin(sim_->now(), "ran.handoff", "ran",
             {{"type", to_string(type)},
              {"from_pci", std::to_string(rec.from_pci)},
              {"to_pci", std::to_string(rec.to_pci)}});
  }
  if (auto* m = obs::metrics()) {
    m->counter("ran.handoff.begun").add();
    m->counter("ran.handoff.type." + to_string(type)).add();
    m->histogram("ran.handoff.latency_ms").observe(sim::to_millis(latency));
    // Per-leg latency digest, dimensioned by hand-off type: the report layer
    // reads the percentile ladder per leg (4G-4G vs 5G-5G vs vertical).
    m->digest(obs::labeled("ran.handoff.latency_ms",
                           {{"type", to_string(type)}}))
        .observe(sim::to_millis(latency));
  }

  const std::size_t idx = records_.size() - 1;
  sim_->schedule_in(latency, "ran.handoff_complete",
                    [this, idx, type, to] { complete_handoff(idx, type, to); });
}

void HandoffEngine::complete_handoff(std::size_t record_idx, HandoffType type,
                                     const Cell* target) {
  ho_in_progress_ = false;
  // Mid-hand-off sector outage: the target died while signalling was in
  // flight, so the hand-off aborts and the UE stays where it was (the A3 /
  // NSA machinery will re-trigger from scratch). A 5G→4G leg drop always
  // completes — it releases the NR leg rather than acquiring anything; a
  // dead LTE target is picked up as an anchor RLF on the next sample.
  if (fault_ != nullptr && target != nullptr &&
      type != HandoffType::k5G4G && fault_->cell_down(target->pci)) {
    records_[record_idx].aborted = true;
    if (log_ != nullptr) {
      log_->log_event(sim_->now(), "HO_ABORT",
                      to_string(type) + " target pci=" +
                          std::to_string(target->pci) + " in outage");
    }
    if (auto* t = obs::tracer()) t->end(sim_->now(), "ran.handoff", "ran");
    if (auto* m = obs::metrics()) {
      m->counter("ran.handoff.aborted").add();
      m->counter("fault.handoff_aborts", {{"type", to_string(type)}}).add();
    }
    return;
  }
  const geo::Point pos = position_at(sim_->now());
  switch (type) {
    case HandoffType::k4G4G:
      lte_ = target;
      break;
    case HandoffType::k5G5G:
      nr_ = target;
      lte_ = anchor_for(*target, pos);
      break;
    case HandoffType::k4G5G:
      nr_ = target;
      lte_ = anchor_for(*target, pos);
      nsa_.complete(type);
      break;
    case HandoffType::k5G4G:
      nr_ = nullptr;
      nsa_.complete(type);
      break;
  }
  note_rrc_state();
  if (log_ != nullptr) {
    log_->log_event(sim_->now(), "HO_COMPLETE", to_string(type));
  }
  if (auto* t = obs::tracer()) t->end(sim_->now(), "ran.handoff", "ran");
  if (auto* m = obs::metrics()) m->counter("ran.handoff.completed").add();
  sim_->schedule_in(config_.after_sample_delay, "ran.ho_quality_sample",
                    [this, record_idx] { sample_quality_after(record_idx); });
}

RrcState HandoffEngine::current_rrc_state() const noexcept {
  if (lte_ == nullptr) return RrcState::kIdle;
  return nr_ != nullptr ? RrcState::kConnectedNr : RrcState::kConnectedLte;
}

void HandoffEngine::note_rrc_state() {
  const RrcState state = current_rrc_state();
  if (!rrc_log_.empty() && rrc_log_.back().second == state) return;
  rrc_log_.emplace_back(sim_->now(), state);
}

void HandoffEngine::handle_outages() {
  // Secondary-leg death is silent from the anchor's point of view: the NR
  // leg just drops (no signalling) and the NSA controller starts over.
  if (nr_ != nullptr && fault_->cell_down(nr_->pci)) {
    const int pci = nr_->pci;
    nr_ = nullptr;
    nsa_.radio_link_failure();
    a3_nr_.reset();
    note_rrc_state();
    if (log_ != nullptr) {
      log_->log_event(sim_->now(), "RLF",
                      "nr leg lost, pci=" + std::to_string(pci));
    }
    if (auto* m = obs::metrics()) {
      m->counter("fault.rlf", {{"leg", "nr"}}).add();
    }
  }
  // Anchor death takes the whole connection down: RRC re-establishment.
  if (lte_ != nullptr && fault_->cell_down(lte_->pci)) {
    begin_reestablishment();
  }
}

void HandoffEngine::begin_reestablishment() {
  const int pci = lte_->pci;
  reestablishing_ = true;
  lte_ = nullptr;
  nr_ = nullptr;
  nsa_.radio_link_failure();
  a3_nr_.reset();
  a3_lte_.reset();
  gaps_.push_back({sim_->now(), -1});
  note_rrc_state();
  if (log_ != nullptr) {
    log_->log_event(sim_->now(), "RLF",
                    "anchor lost, pci=" + std::to_string(pci) +
                        ", re-establishing");
  }
  if (auto* t = obs::tracer()) {
    t->instant(sim_->now(), "ran.rlf", "ran",
               {{"pci", std::to_string(pci)}});
  }
  if (auto* m = obs::metrics()) {
    m->counter("fault.rlf", {{"leg", "anchor"}}).add();
    m->counter("ran.rrc.reestablishments").add();
  }
  // RLF declaration plus the re-establishment exchange; the serving gap is
  // bounded by config_.reestablish.bound() whenever any live cell exists.
  sim_->schedule_in(config_.reestablish.bound(), "ran.rrc_reestablish",
                    [this] { try_reestablish(); });
}

void HandoffEngine::try_reestablish() {
  const geo::Point pos = position_at(sim_->now());
  const Cell* best = nullptr;
  double best_rsrp = -1e9;
  for (const CellMeasurement& m : dep_->measure(radio::Rat::kLte, pos)) {
    if (fault_->cell_down(m.cell->pci)) continue;
    if (best == nullptr || m.rsrp_dbm > best_rsrp) {
      best = m.cell;
      best_rsrp = m.rsrp_dbm;
    }
  }
  if (best == nullptr) {
    // Every candidate is in outage; keep retrying (bounded-gap recovery
    // resumes as soon as a restore toggle fires).
    sim_->schedule_in(config_.reestablish.procedure, "ran.rrc_reestablish",
                      [this] { try_reestablish(); });
    return;
  }
  lte_ = best;
  reestablishing_ = false;
  gaps_.back().end = sim_->now();
  note_rrc_state();
  if (log_ != nullptr) {
    log_->log_event(sim_->now(), "RRC_REESTABLISHED",
                    "pci=" + std::to_string(best->pci));
  }
  if (auto* m = obs::metrics()) {
    m->counter("ran.rrc.reestablished").add();
  }
}

void HandoffEngine::sample_quality_after(std::size_t record_idx) {
  HandoffRecord& rec = records_[record_idx];
  const double walked =
      config_.speed_mps * sim::to_seconds(sim_->now() - route_start_);
  if (walked > route_->length_m()) return;  // run over; leave unrecorded
  const geo::Point pos = route_->position_at(walked);
  // Quality of whatever now serves the data plane: NR if attached else LTE.
  const radio::Rat rat = nr_ != nullptr ? radio::Rat::kNr : radio::Rat::kLte;
  const Cell* serving = nr_ != nullptr ? nr_ : lte_;
  for (const CellMeasurement& m : dep_->measure(rat, pos)) {
    if (m.cell == serving) {
      rec.quality_after_db = m.rsrq_db;
      rec.after_recorded = true;
      return;
    }
  }
}

}  // namespace fiveg::ran

// RRC states and DRX configuration (the paper's Appendix B, Fig. 25 and
// Table 7). Under NSA, a UE climbing to the NR connected state must pass
// through the LTE state machine first, and falling back to idle re-runs the
// LTE tail — the mechanism behind the paper's doubled tail energy.
#pragma once

#include <string>

#include "sim/time.h"

namespace fiveg::ran {

/// Radio Resource Control states of the NSA UE.
enum class RrcState {
  kIdle,          // RRC_IDLE: paging DRX only
  kConnectedLte,  // RRC_CONNECTED on the LTE anchor
  kConnectedNr,   // RRC_CONNECTED with the NR leg active
  kInactive,      // RRC_INACTIVE (SA-only; modelled for the ablation)
};

[[nodiscard]] std::string to_string(RrcState s);

/// Table 7 of the paper: DRX / promotion / tail timers as observed via
/// XCAL on the measured network.
struct DrxConfig {
  sim::Time paging_cycle = sim::from_millis(1280);   // Tidle
  sim::Time on_duration = sim::from_millis(10);      // Ton
  sim::Time lte_promotion = sim::from_millis(623);   // TLTE_pro
  sim::Time lte_to_nr = sim::from_millis(1238);      // T4r_5r
  sim::Time nr_promotion = sim::from_millis(1681);   // TNR_pro
  sim::Time inactivity = sim::from_millis(100);      // Tinac (80/100)
  sim::Time long_drx_cycle = sim::from_millis(320);  // Tlong
  sim::Time tail = sim::from_millis(10720);          // Ttail
};

/// LTE timer set (tail 10.72 s).
[[nodiscard]] DrxConfig lte_drx() noexcept;

/// NR NSA timer set (tail 21.44 s — the LTE tail runs again after the NR
/// one, per the paper's Fig. 23 showcase).
[[nodiscard]] DrxConfig nr_nsa_drx() noexcept;

}  // namespace fiveg::ran

// RRC states and DRX configuration (the paper's Appendix B, Fig. 25 and
// Table 7). Under NSA, a UE climbing to the NR connected state must pass
// through the LTE state machine first, and falling back to idle re-runs the
// LTE tail — the mechanism behind the paper's doubled tail energy.
#pragma once

#include <string>

#include "sim/time.h"

namespace fiveg::ran {

/// Radio Resource Control states of the NSA UE.
enum class RrcState {
  kIdle,          // RRC_IDLE: paging DRX only
  kConnectedLte,  // RRC_CONNECTED on the LTE anchor
  kConnectedNr,   // RRC_CONNECTED with the NR leg active
  kInactive,      // RRC_INACTIVE (SA-only; modelled for the ablation)
};

[[nodiscard]] std::string to_string(RrcState s);

/// Whether `from` → `to` is a legal NSA RRC transition. Self-loops are
/// legal (re-sampling the same state). The key asymmetry: the NR leg can
/// only be added from the LTE connected state (idle/inactive UEs must camp
/// on the anchor first), which is the mechanism behind the paper's doubled
/// promotion latency. Used by fault::InvariantChecker to audit recorded
/// state trajectories under fault injection.
[[nodiscard]] constexpr bool rrc_transition_legal(RrcState from,
                                                  RrcState to) noexcept {
  if (from == to) return true;
  switch (from) {
    case RrcState::kIdle:
      return to == RrcState::kConnectedLte;
    case RrcState::kConnectedLte:
      return to == RrcState::kConnectedNr || to == RrcState::kIdle ||
             to == RrcState::kInactive;
    case RrcState::kConnectedNr:
      return to == RrcState::kConnectedLte || to == RrcState::kIdle ||
             to == RrcState::kInactive;
    case RrcState::kInactive:
      return to == RrcState::kConnectedLte || to == RrcState::kIdle;
  }
  return false;
}

/// RRC re-establishment timing after radio-link failure (TS 36.331-style
/// T310 detection + the re-establishment procedure itself). `bound()` is
/// the invariant ceiling: a UE whose serving cell dies must be camped on a
/// live cell again within detection + procedure of each retry round.
struct ReestablishTimers {
  sim::Time detection = sim::from_millis(200);   // RLF declaration (T310)
  sim::Time procedure = sim::from_millis(150);   // re-establishment exchange
  [[nodiscard]] sim::Time bound() const noexcept {
    return detection + procedure;
  }
};

/// Table 7 of the paper: DRX / promotion / tail timers as observed via
/// XCAL on the measured network.
struct DrxConfig {
  sim::Time paging_cycle = sim::from_millis(1280);   // Tidle
  sim::Time on_duration = sim::from_millis(10);      // Ton
  sim::Time lte_promotion = sim::from_millis(623);   // TLTE_pro
  sim::Time lte_to_nr = sim::from_millis(1238);      // T4r_5r
  sim::Time nr_promotion = sim::from_millis(1681);   // TNR_pro
  sim::Time inactivity = sim::from_millis(100);      // Tinac (80/100)
  sim::Time long_drx_cycle = sim::from_millis(320);  // Tlong
  sim::Time tail = sim::from_millis(10720);          // Ttail
};

/// LTE timer set (tail 10.72 s).
[[nodiscard]] DrxConfig lte_drx() noexcept;

/// NR NSA timer set (tail 21.44 s — the LTE tail runs again after the NR
/// one, per the paper's Fig. 23 showcase).
[[nodiscard]] DrxConfig nr_nsa_drx() noexcept;

}  // namespace fiveg::ran

// 3GPP measurement-report events (Table 5 of the paper). The serving cell
// configures these; the UE reports them; the network reacts — in the
// measured ISP's configuration only A3 actually triggers hand-offs, with a
// 3 dB RSRQ hysteresis sustained for 324 ms.
#pragma once

#include <string>

#include "sim/time.h"

namespace fiveg::ran {

/// Hand-off related measurement events as defined in 36.331/38.331.
enum class MeasEventType { kA1, kA2, kA3, kA4, kA5, kB1, kB2 };

/// Human-readable description (mirrors the paper's Table 5).
[[nodiscard]] std::string describe(MeasEventType t);

/// A3 trigger configuration, per Eq. (1) of the paper:
///   Mn + Ofn + Ocn - Hys > Ms + Ofs + Ocs + Off
/// sustained for `time_to_trigger`.
struct A3Config {
  double hysteresis_db = 3.0;   // the ISP's configured RSRQ gap
  double offset_db = 0.0;       // Off + frequency/cell offsets (all 0 here)
  sim::Time time_to_trigger = sim::from_millis(324);  // ISP's timeToTrigger
};

/// Threshold event evaluator for A1/A2/A4/B1-style events: fires when a
/// quality stays above (or below) a threshold for time_to_trigger, with
/// hysteresis on the leaving side to suppress flapping.
class ThresholdDetector {
 public:
  enum class Direction { kAbove, kBelow };

  ThresholdDetector(Direction direction, double threshold_db,
                    double hysteresis_db = 1.0,
                    sim::Time time_to_trigger = sim::from_millis(324))
      : direction_(direction),
        threshold_db_(threshold_db),
        hysteresis_db_(hysteresis_db),
        time_to_trigger_(time_to_trigger) {}

  /// Feeds one quality sample; true exactly when the event fires. After
  /// firing, the condition must lapse (past the hysteresis) and re-enter
  /// before it can fire again — one report per excursion, like the UE's.
  bool update(sim::Time at, double quality_db);

  void reset() noexcept {
    entering_since_ = kNotEntering;
    armed_ = true;
  }

 private:
  static constexpr sim::Time kNotEntering = -1;

  [[nodiscard]] bool entered(double q) const noexcept {
    return direction_ == Direction::kAbove ? q > threshold_db_
                                           : q < threshold_db_;
  }
  [[nodiscard]] bool lapsed(double q) const noexcept {
    return direction_ == Direction::kAbove
               ? q < threshold_db_ - hysteresis_db_
               : q > threshold_db_ + hysteresis_db_;
  }

  Direction direction_;
  double threshold_db_;
  double hysteresis_db_;
  sim::Time time_to_trigger_;
  sim::Time entering_since_ = kNotEntering;
  bool armed_ = true;
};

/// A5 evaluator: serving below threshold1 while the neighbour is above
/// threshold2, sustained for time_to_trigger.
class A5Detector {
 public:
  A5Detector(double threshold1_db, double threshold2_db,
             sim::Time time_to_trigger = sim::from_millis(324))
      : threshold1_db_(threshold1_db),
        threshold2_db_(threshold2_db),
        time_to_trigger_(time_to_trigger) {}

  bool update(sim::Time at, double serving_db, double neighbor_db);

  void reset() noexcept {
    entering_since_ = kNotEntering;
    armed_ = true;
  }

 private:
  static constexpr sim::Time kNotEntering = -1;

  double threshold1_db_;
  double threshold2_db_;
  sim::Time time_to_trigger_;
  sim::Time entering_since_ = kNotEntering;
  bool armed_ = true;
};

/// Sentinel for "no dwell in progress" in the A3 step helpers below.
inline constexpr sim::Time kA3NotEntering = -1;

/// Pure A3 evaluation step, shared by A3Detector and the cohort sweep
/// (ran::UeCohort keeps one `entering_since` slot per UE in a flat
/// array). Feeds one (serving, neighbour) sample at `at`, advancing the
/// dwell clock held in `entering_since` (kA3NotEntering when idle), and
/// returns true exactly when the event fires — then the dwell resets, so
/// a new one is required to re-fire.
[[nodiscard]] bool a3_step(const A3Config& config, sim::Time& entering_since,
                           sim::Time at, double serving_db,
                           double neighbor_db) noexcept;

/// Stateful A3 evaluator: feed (serving, neighbour) quality samples; fires
/// once the entering condition holds continuously for time_to_trigger.
class A3Detector {
 public:
  explicit A3Detector(A3Config config = {}) : config_(config) {}

  /// Feeds one measurement pair at time `at`; returns true exactly when
  /// the event fires (then resets, so a new dwell is required to re-fire).
  bool update(sim::Time at, double serving_db, double neighbor_db);

  /// Clears any in-progress dwell (e.g. after a hand-off).
  void reset() noexcept { entering_since_ = kNotEntering; }

  [[nodiscard]] const A3Config& config() const noexcept { return config_; }

 private:
  static constexpr sim::Time kNotEntering = -1;

  A3Config config_;
  sim::Time entering_since_ = kNotEntering;
};

}  // namespace fiveg::ran

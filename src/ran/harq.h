// HARQ retransmission model. The paper verifies that MAC-layer HARQ hides
// essentially all radio losses from TCP: retransmissions top out at 4
// attempts on 4G and 2 on 5G (Fig. 10), far below the 32-attempt limit it
// extracts from the PDSCH configuration — so the TCP anomaly cannot be a
// RAN loss problem.
#pragma once

#include "sim/rng.h"
#include "sim/time.h"

namespace fiveg::ran {

/// HARQ operating point for one carrier. Fig. 10's bars decay by a roughly
/// constant factor per extra attempt, so the model is: the first attempt
/// fails with `first_bler`, and every retransmission fails with
/// `subsequent_bler` (chase combining holds it flat).
struct HarqConfig {
  double first_bler = 0.1;       // BLER of the first transmission attempt
  double subsequent_bler = 0.25; // BLER of each retransmission
  int max_attempts = 32;         // Rel-15 PDSCH retransmission threshold
  sim::Time retx_delay = sim::from_millis(8);  // per-retransmission delay
};

/// 4G operating point: ~16% first-attempt BLER, attempts observed up to 4.
[[nodiscard]] HarqConfig lte_harq() noexcept;

/// 5G operating point: ~8% first-attempt BLER, attempts observed up to 2;
/// 5G slots shorten the retransmission turnaround.
[[nodiscard]] HarqConfig nr_harq() noexcept;

/// Stateless HARQ process calculator over a config.
class HarqProcess {
 public:
  explicit HarqProcess(HarqConfig config) : config_(config) {}

  /// Number of transmission attempts one transport block needs (1 = no
  /// retransmission); capped at max_attempts.
  [[nodiscard]] int sample_attempts(sim::Rng& rng) const;

  /// P(block needs attempt n), i.e. survives n-1 failures: the curve the
  /// paper plots in Fig. 10 for n >= 2.
  [[nodiscard]] double attempt_probability(int n) const noexcept;

  /// Residual probability of exhausting all attempts (the paper computes
  /// 2.3e-10 for a 50%-loss link; ours is similarly negligible).
  [[nodiscard]] double residual_loss() const noexcept;

  /// Extra MAC latency incurred by `attempts` total transmissions.
  [[nodiscard]] sim::Time latency_for(int attempts) const noexcept;

  [[nodiscard]] const HarqConfig& config() const noexcept { return config_; }

 private:
  /// BLER of attempt n (1-based).
  [[nodiscard]] double bler_at(int n) const noexcept;

  HarqConfig config_;
};

}  // namespace fiveg::ran

#include "ran/prb_scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"

namespace fiveg::ran {

namespace {

void observe_prb(radio::Rat rat, double fraction) {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr) return;
  static const std::string kNr =
      obs::labeled("ran.prb_fraction", {{"rat", "nr"}});
  static const std::string kLte =
      obs::labeled("ran.prb_fraction", {{"rat", "lte"}});
  reg->digest(rat == radio::Rat::kNr ? kNr : kLte).observe(fraction);
}

}  // namespace

PrbScheduler::PrbScheduler(radio::CarrierConfig carrier, int competing_users)
    : carrier_(std::move(carrier)),
      competing_users_(std::max(0, competing_users)) {}

double PrbScheduler::grant_fraction(sim::Rng& rng) const {
  double fraction;
  if (competing_users_ == 0) {
    // Alone on the carrier: scheduler still withholds a few PRBs for
    // SIB/paging — the paper sees 260-264 of 264.
    fraction = rng.uniform(0.985, 1.0);
  } else {
    const double fair = 1.0 / (1.0 + competing_users_);
    // Proportional-fair jitter around the equal share.
    fraction = std::clamp(fair * rng.uniform(0.8, 1.2), 0.0, 1.0);
  }
  observe_prb(carrier_.rat, fraction);
  return fraction;
}

double observed_prb_fraction(radio::Rat rat, LoadRegime regime,
                             sim::Rng& rng) {
  double fraction;
  if (rat == radio::Rat::kNr) {
    // 260-264 of 264 PRBs regardless of time of day.
    fraction = rng.uniform(260.0, 264.0) / 264.0;
  } else if (regime == LoadRegime::kDay) {
    fraction = rng.uniform(40.0, 85.0) / 100.0;  // 40-85 of 100 PRBs
  } else {
    fraction = rng.uniform(95.0, 100.0) / 100.0;  // 95-100 of 100 PRBs
  }
  observe_prb(rat, fraction);
  return fraction;
}

int typical_competing_users(radio::Rat rat, LoadRegime regime) {
  if (rat == radio::Rat::kNr) return 0;  // 5G was nearly empty in 2019/2020
  return regime == LoadRegime::kDay ? 1 : 0;
}

}  // namespace fiveg::ran

#include "ran/prb_scheduler.h"

#include <algorithm>
#include <utility>

namespace fiveg::ran {

PrbScheduler::PrbScheduler(radio::CarrierConfig carrier, int competing_users)
    : carrier_(std::move(carrier)),
      competing_users_(std::max(0, competing_users)) {}

double PrbScheduler::grant_fraction(sim::Rng& rng) const {
  if (competing_users_ == 0) {
    // Alone on the carrier: scheduler still withholds a few PRBs for
    // SIB/paging — the paper sees 260-264 of 264.
    return rng.uniform(0.985, 1.0);
  }
  const double fair = 1.0 / (1.0 + competing_users_);
  // Proportional-fair jitter around the equal share.
  const double jittered = fair * rng.uniform(0.8, 1.2);
  return std::clamp(jittered, 0.0, 1.0);
}

double observed_prb_fraction(radio::Rat rat, LoadRegime regime,
                             sim::Rng& rng) {
  if (rat == radio::Rat::kNr) {
    // 260-264 of 264 PRBs regardless of time of day.
    return rng.uniform(260.0, 264.0) / 264.0;
  }
  if (regime == LoadRegime::kDay) {
    return rng.uniform(40.0, 85.0) / 100.0;  // 40-85 of 100 PRBs
  }
  return rng.uniform(95.0, 100.0) / 100.0;  // 95-100 of 100 PRBs
}

int typical_competing_users(radio::Rat rat, LoadRegime regime) {
  if (rat == radio::Rat::kNr) return 0;  // 5G was nearly empty in 2019/2020
  return regime == LoadRegime::kDay ? 1 : 0;
}

}  // namespace fiveg::ran

#include "ran/harq.h"

#include <algorithm>
#include <cmath>

namespace fiveg::ran {

HarqConfig lte_harq() noexcept {
  // Fig. 10, 4G: ~16% need a 2nd attempt, ~4% a 3rd, ~1% a 4th.
  return HarqConfig{0.16, 0.25, 32, sim::from_millis(8)};
}

HarqConfig nr_harq() noexcept {
  // Fig. 10, 5G: ~8% need a 2nd attempt, ~1% a 3rd, then it is done; 30 kHz
  // slots and faster scheduling shorten the retransmission turnaround.
  return HarqConfig{0.08, 0.125, 32, sim::from_millis(2.5)};
}

double HarqProcess::bler_at(int n) const noexcept {
  return n <= 1 ? config_.first_bler : config_.subsequent_bler;
}

double HarqProcess::attempt_probability(int n) const noexcept {
  if (n <= 1) return 1.0;
  if (n > config_.max_attempts) return 0.0;
  // Needs attempt n iff attempts 1..n-1 all failed.
  double p = 1.0;
  for (int k = 1; k < n; ++k) p *= bler_at(k);
  return p;
}

double HarqProcess::residual_loss() const noexcept {
  double p = 1.0;
  for (int k = 1; k <= config_.max_attempts; ++k) p *= bler_at(k);
  return p;
}

int HarqProcess::sample_attempts(sim::Rng& rng) const {
  int n = 1;
  while (n < config_.max_attempts && rng.bernoulli(bler_at(n))) ++n;
  return n;
}

sim::Time HarqProcess::latency_for(int attempts) const noexcept {
  const int extra = std::max(0, attempts - 1);
  return extra * config_.retx_delay;
}

}  // namespace fiveg::ran

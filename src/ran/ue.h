// NSA UE dual-connectivity state: LTE-only vs dual (LTE anchor + NR
// secondary), with the hysteresis that decides vertical hand-offs. The
// horizontal (A3) machinery lives in the hand-off engine; this class only
// answers "should the NR leg be added or dropped now?".
#pragma once

#include <optional>

#include "ran/nsa_signaling.h"
#include "sim/time.h"

namespace fiveg::ran {

/// Dual-connectivity controller for one UE.
class NsaUe {
 public:
  struct Config {
    // Add the NR leg when its best-cell RSRP exceeds the service floor by
    // this margin (avoids flapping at the coverage edge)...
    double add_margin_db = 5.0;
    // ...and drop it when RSRP falls below the floor.
    double service_floor_dbm = -105.0;
    // Both conditions must hold for this long (B1-style time-to-trigger).
    sim::Time time_to_trigger = sim::from_millis(200);
  };

  NsaUe() = default;
  explicit NsaUe(const Config& config) : config_(config) {}

  /// True while the NR secondary leg is attached.
  [[nodiscard]] bool nr_attached() const noexcept { return nr_attached_; }

  /// Feeds the best NR cell's RSRP at `at`; returns the vertical hand-off
  /// to execute now (4G-5G to add the leg, 5G-4G to drop it), if any.
  /// The caller performs the hand-off and must then call `complete()`.
  [[nodiscard]] std::optional<HandoffType> update(sim::Time at,
                                                  double best_nr_rsrp_dbm);

  /// Commits the pending vertical transition once signalling finishes.
  void complete(HandoffType t) noexcept;

  /// Radio-link failure: the NR leg (if any) is lost instantly, without
  /// signalling, and any pending dwell decision is abandoned.
  void radio_link_failure() noexcept {
    nr_attached_ = false;
    add_dwell_since_ = kNotDwelling;
    drop_dwell_since_ = kNotDwelling;
  }

 private:
  static constexpr sim::Time kNotDwelling = -1;

  Config config_{};
  bool nr_attached_ = false;
  sim::Time add_dwell_since_ = kNotDwelling;
  sim::Time drop_dwell_since_ = kNotDwelling;
};

/// Sentinel for "no dwell in progress" in nsa_step below.
inline constexpr sim::Time kNsaNotDwelling = -1;

/// Pure NSA add/drop step, shared by NsaUe and the cohort sweep (which
/// keeps the two dwell clocks per UE in flat arrays). Feeds the best NR
/// RSRP at `at` given the current attach state; advances the dwell clocks
/// (kNsaNotDwelling when idle) and returns the vertical hand-off to
/// execute now, if any. The caller owns the attach state and flips it
/// when the hand-off completes (NsaUe::complete's logic).
[[nodiscard]] std::optional<HandoffType> nsa_step(
    const NsaUe::Config& config, bool nr_attached, sim::Time& add_dwell_since,
    sim::Time& drop_dwell_since, sim::Time at,
    double best_nr_rsrp_dbm) noexcept;

}  // namespace fiveg::ran

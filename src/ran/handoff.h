// The mobility engine: walks a UE along a route through the campus
// deployment, runs the A3 horizontal hand-off machinery and the NSA
// vertical add/drop logic, executes hand-offs with the Appendix-A
// signalling latencies, and records every event — the data source for the
// paper's Figs. 4, 5, 6 and the hand-off halves of Figs. 7-12.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "geo/route.h"
#include "measure/kpi_logger.h"
#include "ran/deployment.h"
#include "ran/measurement_events.h"
#include "ran/nsa_signaling.h"
#include "ran/rrc.h"
#include "ran/ue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace fiveg::ran {

/// One executed hand-off.
struct HandoffRecord {
  sim::Time trigger_at = 0;
  HandoffType type = HandoffType::k4G4G;
  int from_pci = -1;
  int to_pci = -1;
  sim::Time latency = 0;          // control-plane duration = data interruption
  double quality_before_db = 0;   // serving RSRQ at trigger
  double quality_after_db = 0;    // serving RSRQ shortly after completion
  bool after_recorded = false;    // false if the run ended too early
  // The target cell went into (injected) outage while signalling was in
  // flight: the hand-off ended without switching cells.
  bool aborted = false;
};

/// A data-plane interruption window caused by a hand-off.
struct Interruption {
  sim::Time begin = 0;
  sim::Time end = 0;
  HandoffType type = HandoffType::k4G4G;
};

/// Mobility parameters.
struct MobilityConfig {
  double speed_mps = 1.5;  // the paper walks/bikes at 3-10 km/h
  sim::Time sample_period = sim::from_millis(100);
  A3Config a3;
  NsaUe::Config nsa;
  // Delay after hand-off completion at which "quality after" is sampled.
  sim::Time after_sample_delay = sim::from_millis(500);
  // Radio-link-failure recovery timing (only exercised under fault
  // injection; see fault::FaultKind::kSectorOutage).
  ReestablishTimers reestablish;
};

/// Event-driven hand-off engine for one UE.
class HandoffEngine {
 public:
  /// All pointers must outlive the engine. `logger` may be null.
  HandoffEngine(sim::Simulator* simulator, const Deployment* deployment,
                MobilityConfig config, sim::Rng rng,
                measure::KpiLogger* logger = nullptr);

  /// Begins walking `route` from the simulator's current time. The engine
  /// samples until the route is exhausted.
  void start(geo::Route route);

  [[nodiscard]] const std::vector<HandoffRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::vector<Interruption>& interruptions()
      const noexcept {
    return interruptions_;
  }

  /// True while a hand-off is interrupting the data plane at `at`.
  [[nodiscard]] bool data_interrupted(sim::Time at) const noexcept;

  /// UE position at a simulated time (route start anchored at start()).
  [[nodiscard]] geo::Point position_at(sim::Time at) const;

  /// Currently attached cells (nullptr when not attached).
  [[nodiscard]] const Cell* serving_lte() const noexcept { return lte_; }
  [[nodiscard]] const Cell* serving_nr() const noexcept { return nr_; }
  [[nodiscard]] bool nr_attached() const noexcept { return nr_ != nullptr; }

  /// A window during which the UE had no serving cell at all (anchor lost
  /// to radio-link failure, re-establishment pending). `end == -1` marks a
  /// gap still open when the run ended.
  struct ServingGap {
    sim::Time begin = 0;
    sim::Time end = -1;
  };
  [[nodiscard]] const std::vector<ServingGap>& serving_gaps() const noexcept {
    return gaps_;
  }
  /// True while the UE is between radio-link failure and re-attachment.
  [[nodiscard]] bool reestablishing() const noexcept {
    return reestablishing_;
  }
  /// Every RRC state change, in time order (starts with the initial
  /// attachment). Audited by fault::InvariantChecker::check_rrc_legality.
  [[nodiscard]] const std::vector<std::pair<sim::Time, RrcState>>&
  rrc_trajectory() const noexcept {
    return rrc_log_;
  }

 private:
  void step();
  // Sector-outage handling (no-ops without an installed fault runtime):
  // drops a dead NR leg, declares radio-link failure on a dead anchor.
  void handle_outages();
  void begin_reestablishment();
  void try_reestablish();
  [[nodiscard]] bool serving_gap_at(sim::Time at) const noexcept;
  [[nodiscard]] RrcState current_rrc_state() const noexcept;
  void note_rrc_state();
  void begin_handoff(HandoffType type, const Cell* from, const Cell* to,
                     double quality_before_db);
  void complete_handoff(std::size_t record_idx, HandoffType type,
                        const Cell* target);
  void sample_quality_after(std::size_t record_idx);
  /// The LTE anchor that must host a given NR cell (co-sited, strongest).
  [[nodiscard]] const Cell* anchor_for(const Cell& nr_cell,
                                       const geo::Point& ue) const;
  void log_kpis(const geo::Point& ue,
                const std::vector<CellMeasurement>& lte_meas,
                const std::vector<CellMeasurement>& nr_meas);

  sim::Simulator* sim_;
  const Deployment* dep_;
  MobilityConfig config_;
  sim::Rng rng_;
  measure::KpiLogger* log_;

  std::optional<geo::Route> route_;
  sim::Time route_start_ = 0;

  const Cell* lte_ = nullptr;
  const Cell* nr_ = nullptr;
  NsaUe nsa_;
  A3Detector a3_nr_;
  A3Detector a3_lte_;
  bool ho_in_progress_ = false;

  std::vector<HandoffRecord> records_;
  std::vector<Interruption> interruptions_;

  // Per-sample measurement scratch, reused every step so the 10 Hz sweep
  // is allocation-free in steady state (fully rewritten each sample).
  std::vector<CellMeasurement> lte_meas_;
  std::vector<CellMeasurement> nr_meas_;

  // Fault injection (null when no fault::Runtime is installed).
  fault::Runtime* fault_ = nullptr;
  bool reestablishing_ = false;
  std::vector<ServingGap> gaps_;
  std::vector<std::pair<sim::Time, RrcState>> rrc_log_;
};

}  // namespace fiveg::ran

// The NSA hand-off signalling sequences reverse-engineered in the paper's
// Appendix A (Fig. 24). Under NSA the 5G data plane hangs off the 4G
// control plane, so a 5G-5G hand-off must release NR, hand off between the
// 4G anchors, and re-add NR on the target — the root cause of the paper's
// 108.4 ms hand-off latency (3.6x the 30.1 ms of 4G-4G).
#pragma once

#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace fiveg::ran {

/// Hand-off category, named source -> target.
enum class HandoffType { k4G4G, k5G5G, k4G5G, k5G4G };

[[nodiscard]] std::string to_string(HandoffType t);

/// One control-plane message/processing leg of a hand-off.
struct SignalingStep {
  std::string name;
  double mean_ms;
};

/// The ordered signalling legs for a hand-off type. Leg means sum to the
/// paper's measured averages: 30.10 ms (4G-4G), 108.40 ms (5G-5G),
/// 80.23 ms (4G-5G); 5G-4G (release + LTE HO) is not reported by the paper
/// and sums to ~46.6 ms here.
[[nodiscard]] const std::vector<SignalingStep>& handoff_sequence(
    HandoffType t);

/// Expected total latency (sum of leg means).
[[nodiscard]] sim::Time expected_handoff_latency(HandoffType t);

/// Samples a total hand-off latency: each leg jitters independently
/// (sigma = 15% of its mean, floored at 30% of the mean).
[[nodiscard]] sim::Time sample_handoff_latency(HandoffType t, sim::Rng& rng);

}  // namespace fiveg::ran

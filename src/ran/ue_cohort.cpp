#include "ran/ue_cohort.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "ran/cell.h"

namespace fiveg::ran {

namespace {

// Spatial-order bucket edge: UEs are sorted by 64 m grid cell before the
// measurement fill so neighbouring UEs hit the same campus/link memo sets.
constexpr double kOrderCellM = 64.0;

}  // namespace

UeCohort::UeCohort(const Deployment* deployment, CohortConfig config,
                   sim::Rng rng)
    : dep_(deployment),
      config_(std::move(config)),
      rng_(rng),
      fault_(fault::runtime()) {
  const auto site_of = [](const Cell& c) -> const radio::TxSite& {
    return c.site;
  };
  const std::vector<Cell>& lte_cells = dep_->cells(radio::Rat::kLte);
  const std::vector<Cell>& nr_cells = dep_->cells(radio::Rat::kNr);
  lte_.plan = radio::SectorPlan::build(lte_cells.begin(), lte_cells.end(),
                                       site_of);
  lte_.n_cells = lte_cells.size();
  nr_.plan =
      radio::SectorPlan::build(nr_cells.begin(), nr_cells.end(), site_of);
  nr_.n_cells = nr_cells.size();
  lin_scratch_.resize(std::max(lte_.n_cells, nr_.n_cells));

  const std::string& name = config_.name;
  sweep_counter_ = obs::labeled("ran.cohort.sweeps", {{"cohort", name}});
  rows_computed_counter_ =
      obs::labeled("ran.cohort.rows_computed", {{"cohort", name}});
  rows_reused_counter_ =
      obs::labeled("ran.cohort.rows_reused", {{"cohort", name}});
  a3_counter_ = obs::labeled("ran.cohort.a3_triggers", {{"cohort", name}});
  rsrp_digest_lte_ = obs::labeled("ran.cohort.rsrp_dbm",
                                  {{"cohort", name}, {"rat", "lte"}});
  rsrp_digest_nr_ =
      obs::labeled("ran.cohort.rsrp_dbm", {{"cohort", name}, {"rat", "nr"}});
  sinr_digest_lte_ = obs::labeled("ran.cohort.sinr_db",
                                  {{"cohort", name}, {"rat", "lte"}});
  sinr_digest_nr_ =
      obs::labeled("ran.cohort.sinr_db", {{"cohort", name}, {"rat", "nr"}});
  nr_attached_gauge_ =
      obs::labeled("ran.cohort.nr_attached_frac", {{"cohort", name}});
  for (const HandoffType type :
       {HandoffType::k4G4G, HandoffType::k5G5G, HandoffType::k4G5G,
        HandoffType::k5G4G}) {
    const auto i = static_cast<std::size_t>(type);
    ho_counter_[i] = obs::labeled(
        "ran.cohort.handoffs", {{"cohort", name}, {"type", to_string(type)}});
    ho_latency_digest_[i] =
        obs::labeled("ran.cohort.handoff_latency_ms",
                     {{"cohort", name}, {"type", to_string(type)}});
  }
}

int UeCohort::add_stationary(geo::Point pos) {
  const int ue = static_cast<int>(x_.size());
  x_.push_back(pos.x);
  y_.push_back(pos.y);
  route_id_.push_back(-1);
  speed_mps_.push_back(0.0);
  serving_lte_.push_back(-1);
  serving_nr_.push_back(-1);
  a3_since_.push_back(kA3NotEntering);
  nsa_add_since_.push_back(kNsaNotDwelling);
  nsa_drop_since_.push_back(kNsaNotDwelling);
  ho_busy_until_.push_back(0);
  rrc_.push_back(static_cast<std::uint8_t>(RrcState::kIdle));
  for (MeasBlock* b : {&lte_, &nr_}) {
    b->rsrp_dbm.resize(x_.size() * b->n_cells);
    b->sinr_db.resize(x_.size() * b->n_cells);
    b->rsrq_db.resize(x_.size() * b->n_cells);
    b->key_x.resize(x_.size());
    b->key_y.resize(x_.size());
    b->key_offset_db.resize(x_.size());
    b->valid.resize(x_.size(), 0);
  }
  return ue;
}

int UeCohort::add_route(geo::Route route, double speed_mps) {
  const geo::Point start = route.position_at(0.0);
  const int ue = add_stationary(start);
  routes_.push_back(std::move(route));
  route_id_[static_cast<std::size_t>(ue)] =
      static_cast<std::int32_t>(routes_.size() - 1);
  speed_mps_[static_cast<std::size_t>(ue)] = speed_mps;
  return ue;
}

void UeCohort::advance_positions(sim::Time at) {
  const double elapsed_s =
      sim::to_seconds(std::max<sim::Time>(at - start_time_, 0));
  for (std::size_t u = 0; u < x_.size(); ++u) {
    if (route_id_[u] < 0) continue;
    const geo::Route& route = routes_[static_cast<std::size_t>(route_id_[u])];
    const geo::Point p = route.position_at(speed_mps_[u] * elapsed_s);
    x_[u] = p.x;
    y_[u] = p.y;
  }
}

void UeCohort::build_sweep_order() {
  const std::size_t n = x_.size();
  sweep_order_.resize(n);
  order_keys_.resize(n);
  const geo::Rect& b = dep_->campus().bounds();
  for (std::size_t u = 0; u < n; ++u) {
    const auto ix = static_cast<std::uint64_t>(
        std::max(0.0, (x_[u] - b.min.x) / kOrderCellM));
    const auto iy = static_cast<std::uint64_t>(
        std::max(0.0, (y_[u] - b.min.y) / kOrderCellM));
    order_keys_[u] = (iy << 32) | (ix & 0xffffffffULL);
    sweep_order_[u] = static_cast<std::uint32_t>(u);
  }
  // Deterministic spatial order: grid cell major, UE index as tie-break.
  std::sort(sweep_order_.begin(), sweep_order_.end(),
            [this](std::uint32_t a, std::uint32_t b2) {
              if (order_keys_[a] != order_keys_[b2]) {
                return order_keys_[a] < order_keys_[b2];
              }
              return a < b2;
            });
}

void UeCohort::fill_row(radio::Rat rat, MeasBlock& block, std::size_t ue) {
  const std::size_t n = block.n_cells;
  measure_cells_row(dep_->env(), dep_->carrier(rat), block.plan,
                    {x_[ue], y_[ue]}, config_.interferer_load,
                    block.rsrp_dbm.data() + ue * n,
                    block.sinr_db.data() + ue * n,
                    block.rsrq_db.data() + ue * n, lin_scratch_.data());
}

const UeCohort::MeasBlock& UeCohort::measure_batch(radio::Rat rat) {
  MeasBlock& block = rat == radio::Rat::kLte ? lte_ : nr_;
  build_sweep_order();
  const double offset =
      fault_ != nullptr ? fault_->coverage_offset_db() : 0.0;
  for (const std::uint32_t u : sweep_order_) {
    const auto xb = std::bit_cast<std::uint64_t>(x_[u]);
    const auto yb = std::bit_cast<std::uint64_t>(y_[u]);
    if (block.valid[u] != 0 && block.key_x[u] == xb && block.key_y[u] == yb &&
        block.key_offset_db[u] == offset) {
      ++stats_.rows_reused;
      continue;
    }
    fill_row(rat, block, u);
    block.key_x[u] = xb;
    block.key_y[u] = yb;
    block.key_offset_db[u] = offset;
    block.valid[u] = 1;
    ++stats_.rows_computed;
  }
  return block;
}

int UeCohort::anchor_for(std::size_t ue, int site_id) const {
  const std::vector<Cell>& cells = dep_->cells(radio::Rat::kLte);
  const double* rsrp = lte_.rsrp_dbm.data() + ue * lte_.n_cells;
  int best = -1;
  double best_rsrp = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].site_id != site_id || !cell_live(cells[i])) continue;
    if (best < 0 || rsrp[i] > best_rsrp) {
      best = static_cast<int>(i);
      best_rsrp = rsrp[i];
    }
  }
  return best >= 0 ? best : serving_lte_[ue];
}

void UeCohort::note_rrc(std::size_t ue) {
  RrcState state = RrcState::kIdle;
  if (serving_lte_[ue] >= 0) {
    state = serving_nr_[ue] >= 0 ? RrcState::kConnectedNr
                                 : RrcState::kConnectedLte;
  }
  rrc_[ue] = static_cast<std::uint8_t>(state);
}

void UeCohort::apply_handoff(std::size_t ue, HandoffType type, int target,
                             sim::Time now) {
  // Cohort semantics: the serving change lands now; the UE's trigger
  // machinery blanks for the sampled signalling latency (the data-plane
  // interruption the per-UE engine models with a completion event).
  const sim::Time latency = sample_handoff_latency(type, rng_);
  ho_busy_until_[ue] = now + latency;
  a3_since_[ue] = kA3NotEntering;
  switch (type) {
    case HandoffType::k4G4G:
      serving_lte_[ue] = target;
      break;
    case HandoffType::k5G5G:
    case HandoffType::k4G5G:
      serving_nr_[ue] = target;
      serving_lte_[ue] = anchor_for(
          ue, dep_->cells(radio::Rat::kNr)[static_cast<std::size_t>(target)]
                  .site_id);
      break;
    case HandoffType::k5G4G:
      serving_nr_[ue] = -1;
      break;
  }
  note_rrc(ue);
  ++stats_.handoffs;
  if (type != HandoffType::k4G4G && type != HandoffType::k5G5G) {
    ++stats_.vertical_handoffs;
  }
  if (auto* reg = obs::metrics()) {
    const auto i = static_cast<std::size_t>(type);
    reg->counter(ho_counter_[i]).add();
    reg->digest(ho_latency_digest_[i]).observe(sim::to_millis(latency));
  }
}

void UeCohort::trigger_phase(sim::Time now) {
  const std::vector<Cell>& lte_cells = dep_->cells(radio::Rat::kLte);
  const std::vector<Cell>& nr_cells = dep_->cells(radio::Rat::kNr);
  const std::size_t nl = lte_.n_cells, nn = nr_.n_cells;
  for (std::size_t u = 0; u < x_.size(); ++u) {
    if (now < ho_busy_until_[u]) continue;
    const double* lte_rsrp = lte_.rsrp_dbm.data() + u * nl;
    const double* lte_rsrq = lte_.rsrq_db.data() + u * nl;
    const double* nr_rsrp = nr_.rsrp_dbm.data() + u * nn;
    const double* nr_rsrq = nr_.rsrq_db.data() + u * nn;

    // Initial attachment: camp on the best (live) LTE cell.
    if (serving_lte_[u] < 0) {
      int best = -1;
      for (std::size_t i = 0; i < nl; ++i) {
        if (!cell_live(lte_cells[i])) continue;
        if (best < 0 || lte_rsrp[i] > lte_rsrp[best]) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) continue;  // every LTE cell in outage: stay idle
      serving_lte_[u] = best;
      note_rrc(u);
    }

    // Vertical first (NSA leg add/drop), exactly as the per-UE engine.
    int best_nr = -1;
    for (std::size_t i = 0; i < nn; ++i) {
      if (!cell_live(nr_cells[i])) continue;
      if (best_nr < 0 || nr_rsrp[i] > nr_rsrp[best_nr]) {
        best_nr = static_cast<int>(i);
      }
    }
    const double best_nr_rsrp = best_nr >= 0 ? nr_rsrp[best_nr] : -140.0;
    const bool attached = serving_nr_[u] >= 0;
    if (const auto vertical =
            nsa_step(config_.nsa, attached, nsa_add_since_[u],
                     nsa_drop_since_[u], now, best_nr_rsrp)) {
      apply_handoff(u, *vertical,
                    *vertical == HandoffType::k4G5G ? best_nr
                                                    : serving_lte_[u],
                    now);
      continue;
    }

    // Horizontal A3 on RSRQ: 5G-5G while the NR leg is up, else 4G-4G.
    const double* rsrq = attached ? nr_rsrq : lte_rsrq;
    const std::size_t n = attached ? nn : nl;
    const std::vector<Cell>& cells = attached ? nr_cells : lte_cells;
    const int serving = attached ? serving_nr_[u] : serving_lte_[u];
    int neighbor = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i) == serving || !cell_live(cells[i])) continue;
      if (neighbor < 0 || rsrq[i] > rsrq[neighbor]) {
        neighbor = static_cast<int>(i);
      }
    }
    if (neighbor >= 0 &&
        a3_step(config_.a3, a3_since_[u], now, rsrq[serving],
                rsrq[neighbor])) {
      ++stats_.a3_triggers;
      if (auto* reg = obs::metrics()) reg->counter(a3_counter_).add();
      apply_handoff(u, attached ? HandoffType::k5G5G : HandoffType::k4G4G,
                    neighbor, now);
    }
  }
}

void UeCohort::sweep(sim::Time now) {
  const std::uint64_t rows_before_computed = stats_.rows_computed;
  const std::uint64_t rows_before_reused = stats_.rows_reused;
  advance_positions(now);
  measure_batch(radio::Rat::kLte);
  measure_batch(radio::Rat::kNr);
  trigger_phase(now);
  ++stats_.sweeps;

  if (auto* reg = obs::metrics()) {
    reg->counter(sweep_counter_).add();
    reg->counter(rows_computed_counter_)
        .add(stats_.rows_computed - rows_before_computed);
    reg->counter(rows_reused_counter_)
        .add(stats_.rows_reused - rows_before_reused);
    // Serving-cell KPI aggregation: per-cohort digests, never per-UE
    // series (10k UEs must not mint 10k registry entries).
    auto& rsrp_lte = reg->digest(rsrp_digest_lte_);
    auto& sinr_lte = reg->digest(sinr_digest_lte_);
    auto& rsrp_nr = reg->digest(rsrp_digest_nr_);
    auto& sinr_nr = reg->digest(sinr_digest_nr_);
    std::size_t attached = 0;
    for (std::size_t u = 0; u < x_.size(); ++u) {
      if (serving_lte_[u] >= 0) {
        const auto i = static_cast<std::size_t>(serving_lte_[u]);
        rsrp_lte.observe(lte_.rsrp_dbm[u * lte_.n_cells + i]);
        sinr_lte.observe(lte_.sinr_db[u * lte_.n_cells + i]);
      }
      if (serving_nr_[u] >= 0) {
        const auto i = static_cast<std::size_t>(serving_nr_[u]);
        rsrp_nr.observe(nr_.rsrp_dbm[u * nr_.n_cells + i]);
        sinr_nr.observe(nr_.sinr_db[u * nr_.n_cells + i]);
        ++attached;
      }
    }
    if (!x_.empty()) {
      reg->gauge(nr_attached_gauge_)
          .set(static_cast<double>(attached) /
               static_cast<double>(x_.size()));
    }
  }
}

void UeCohort::tick(sim::Simulator* simulator, sim::Time until) {
  // Domain-tagged cohorts refuse to sweep off their declared partition:
  // running here with foreign lane state installed would bump another
  // lane's registry and draw from another lane's fault runtime.
  if (config_.domain != sim::kNoLane &&
      sim::current_lane() != config_.domain) {
    std::string msg = "ran: cohort '";
    msg += config_.name;
    msg += "' pinned to lane ";
    msg += std::to_string(config_.domain);
    msg += " swept on lane ";
    msg += std::to_string(sim::current_lane());
    throw std::logic_error(msg);
  }
  const sim::Time now = simulator->now();
  if (now > until) return;
  sweep(now);
  simulator->schedule_in(config_.sample_period, "ran.cohort_sweep",
                         [this, simulator, until] { tick(simulator, until); });
}

void UeCohort::start(sim::Simulator* simulator, sim::Time until) {
  start_time_ = simulator->now();
  simulator->schedule_in(0, "ran.cohort_sweep",
                         [this, simulator, until] { tick(simulator, until); });
}

}  // namespace fiveg::ran

#include "ran/deployment.h"

#include <algorithm>
#include <array>
#include <set>
#include <stdexcept>
#include <utility>

#include "radio/carrier.h"
#include "radio/mcs.h"

namespace fiveg::ran {

Deployment::Deployment(const geo::CampusMap* campus, std::uint64_t seed,
                       std::vector<Cell> lte_cells, std::vector<Cell> nr_cells)
    : campus_(campus),
      env_(campus, seed),
      lte_carrier_(radio::lte1800()),
      nr_carrier_(radio::nr3500()),
      lte_cells_(std::move(lte_cells)),
      nr_cells_(std::move(nr_cells)) {
  if (lte_cells_.empty() || nr_cells_.empty()) {
    throw std::invalid_argument("Deployment needs cells for both RATs");
  }
}

std::vector<CellMeasurement> Deployment::measure(radio::Rat rat,
                                                 const geo::Point& ue) const {
  return measure_cells(env_, carrier(rat), cells(rat), ue);
}

void Deployment::measure_into(radio::Rat rat, const geo::Point& ue,
                              std::vector<CellMeasurement>& out) const {
  measure_cells(env_, carrier(rat), cells(rat), ue, 0.5, out);
}

CellMeasurement Deployment::best(radio::Rat rat, const geo::Point& ue) const {
  return best_cell(env_, carrier(rat), cells(rat), ue);
}

std::vector<Cell> Deployment::lte_cells_cosited_with_nr() const {
  std::set<int> nr_sites;
  for (const Cell& c : nr_cells_) nr_sites.insert(c.site_id);
  std::vector<Cell> out;
  for (const Cell& c : lte_cells_) {
    if (nr_sites.count(c.site_id) != 0) out.push_back(c);
  }
  return out;
}

double Deployment::dl_bitrate_bps(radio::Rat rat, const geo::Point& ue,
                                  double prb_fraction) const {
  const CellMeasurement m = best(rat, ue);
  if (!m.in_coverage()) return 0.0;
  return radio::dl_bitrate_bps(carrier(rat), m.sinr_db, prb_fraction);
}

int Deployment::site_count(radio::Rat rat) const {
  std::set<int> sites;
  for (const Cell& c : cells(rat)) sites.insert(c.site_id);
  return static_cast<int>(sites.size());
}

Deployment make_deployment(const geo::CampusMap* campus, sim::Rng rng,
                           int gnb_sites) {
  const geo::Rect& b = campus->bounds();

  // 13 eNB masts on a jittered 3x5 grid (two corners left empty), matching
  // the paper's 13 eNBs in 0.46 km^2 (28.14 sites/km^2).
  std::vector<geo::Point> enb_sites;
  const int cols = 3, rows = 5;
  for (int r = 0; r < rows && enb_sites.size() < 13; ++r) {
    for (int c = 0; c < cols && enb_sites.size() < 13; ++c) {
      if ((r == 0 && c == 2) || (r == 4 && c == 0)) continue;  // skip 2 -> 13
      const double x = b.min.x + (c + 0.5) * b.width() / cols +
                       rng.uniform(-25.0, 25.0);
      const double y = b.min.y + (r + 0.5) * b.height() / rows +
                       rng.uniform(-25.0, 25.0);
      enb_sites.push_back({std::clamp(x, b.min.x + 10, b.max.x - 10),
                           std::clamp(y, b.min.y + 10, b.max.y - 10)});
    }
  }

  // LTE sectors: eight 3-sector + five 2-sector masts = 34 cells (Table 1).
  std::vector<Cell> lte_cells;
  int lte_pci = 200;
  for (std::size_t s = 0; s < enb_sites.size(); ++s) {
    const int sectors = s < 8 ? 3 : 2;
    const double base_az = rng.uniform(0.0, 360.0);
    for (int k = 0; k < sectors; ++k) {
      Cell cell;
      cell.pci = lte_pci++;
      cell.site_id = static_cast<int>(s);
      cell.rat = radio::Rat::kLte;
      cell.site = {enb_sites[s],
                   radio::SectorAntenna(base_az + k * 360.0 / sectors)};
      lte_cells.push_back(cell);
    }
  }

  // gNBs co-sited with spread-out eNB masts; the stock 6-site deployment
  // yields 13 NR sectors with the paper's PCIs (Fig. 2(a) labels cells
  // 60..80); denser variants reuse the same spread order.
  const std::array<int, 13> site_spread = {0, 2, 5, 7, 10, 12, 1,
                                           4, 8, 11, 3, 6, 9};
  const std::array<int, 13> nr_pcis = {60, 61, 62, 63, 64, 65, 68,
                                       69, 72, 73, 74, 79, 80};
  gnb_sites = std::clamp(gnb_sites, 1, static_cast<int>(enb_sites.size()));
  std::vector<Cell> nr_cells;
  std::size_t pci_idx = 0;
  for (int g = 0; g < gnb_sites; ++g) {
    const int site_id = site_spread.at(static_cast<std::size_t>(g));
    const int sectors = g == 0 ? 3 : 2;  // stock: 3 + 5*2 = 13 cells
    const double base_az = rng.uniform(0.0, 360.0);
    for (int k = 0; k < sectors; ++k) {
      Cell cell;
      cell.pci = pci_idx < nr_pcis.size()
                     ? nr_pcis[pci_idx]
                     : 81 + static_cast<int>(pci_idx - nr_pcis.size());
      ++pci_idx;
      cell.site_id = site_id;
      cell.rat = radio::Rat::kNr;
      cell.site = {enb_sites[static_cast<std::size_t>(site_id)],
                   radio::SectorAntenna(base_az + k * 360.0 / sectors)};
      nr_cells.push_back(cell);
    }
  }

  return Deployment(campus, rng.next_u64(), std::move(lte_cells),
                    std::move(nr_cells));
}

std::vector<geo::Point> hex_grid_sites(geo::Point center, double isd_m,
                                       int rings) {
  // Axial coordinates: every (q, r) with |q|, |r|, |q+r| <= rings. The
  // q-major loop makes the site order (hence site_ids) deterministic.
  std::vector<geo::Point> sites;
  const double row_step = isd_m * 0.8660254037844386;  // isd * sqrt(3)/2
  for (int q = -rings; q <= rings; ++q) {
    const int r_lo = std::max(-rings, -q - rings);
    const int r_hi = std::min(rings, -q + rings);
    for (int r = r_lo; r <= r_hi; ++r) {
      sites.push_back({center.x + isd_m * (q + 0.5 * r),
                       center.y + row_step * r});
    }
  }
  return sites;
}

Deployment make_city_deployment(const geo::CampusMap* campus, sim::Rng rng,
                                const CityGridConfig& config) {
  const geo::Rect& b = campus->bounds();
  const geo::Point center{(b.min.x + b.max.x) / 2.0,
                          (b.min.y + b.max.y) / 2.0};
  const std::vector<geo::Point> sites =
      hex_grid_sites(center, config.isd_m, std::max(config.rings, 0));

  const int lte_sectors = std::max(config.lte_sectors_per_site, 1);
  const int nr_sectors = std::max(config.nr_sectors_per_site, 1);
  std::vector<Cell> lte_cells;
  std::vector<Cell> nr_cells;
  int lte_pci = 300;
  int nr_pci = 500;
  for (std::size_t s = 0; s < sites.size(); ++s) {
    const double lte_az = rng.uniform(0.0, 360.0);
    for (int k = 0; k < lte_sectors; ++k) {
      Cell cell;
      cell.pci = lte_pci++;
      cell.site_id = static_cast<int>(s);
      cell.rat = radio::Rat::kLte;
      cell.site = {sites[s],
                   radio::SectorAntenna(lte_az + k * 360.0 / lte_sectors)};
      lte_cells.push_back(cell);
    }
    const double nr_az = rng.uniform(0.0, 360.0);
    for (int k = 0; k < nr_sectors; ++k) {
      Cell cell;
      cell.pci = nr_pci++;
      cell.site_id = static_cast<int>(s);
      cell.rat = radio::Rat::kNr;
      cell.site = {sites[s],
                   radio::SectorAntenna(nr_az + k * 360.0 / nr_sectors)};
      nr_cells.push_back(cell);
    }
  }
  return Deployment(campus, rng.next_u64(), std::move(lte_cells),
                    std::move(nr_cells));
}

}  // namespace fiveg::ran

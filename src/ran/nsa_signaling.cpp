#include "ran/nsa_signaling.h"

#include <algorithm>
#include <numeric>

namespace fiveg::ran {

std::string to_string(HandoffType t) {
  switch (t) {
    case HandoffType::k4G4G:
      return "4G-4G";
    case HandoffType::k5G5G:
      return "5G-5G";
    case HandoffType::k4G5G:
      return "4G-5G";
    case HandoffType::k5G4G:
      return "5G-4G";
  }
  return "?";
}

namespace {

// Shared legs of an intra-LTE (anchor) hand-off; sums to 30.1 ms.
std::vector<SignalingStep> lte_ho_legs() {
  return {
      {"MeasurementReport processing", 2.5},
      {"HO decision", 3.0},
      {"X2 Hand-off Request", 4.0},
      {"Admission control", 4.2},
      {"Request ACK", 2.4},
      {"RRC Connection Reconfiguration (LTE)", 6.0},
      {"LTE MAC RACH", 8.0},
  };
}

// Extra legs to release the source NR leg and roll back to the master eNB.
std::vector<SignalingStep> nr_release_legs() {
  return {
      {"NR resource release (RRC Reconfiguration)", 9.0},
      {"Roll back to master eNB", 7.5},
  };
}

// Extra legs to add an NR secondary cell on the target master.
std::vector<SignalingStep> nr_addition_legs(double sync_ms, double rach_ms) {
  return {
      {"SN Status Transfer", 3.3},
      {"NR Addition Request", 5.5},
      {"Addition Request ACK", 3.0},
      {"RRC Connection Reconfiguration (NR)", 10.0},
      {"Link synchronization", sync_ms},
      {"NR MAC RACH", rach_ms},
  };
}

std::vector<SignalingStep> build_sequence(HandoffType t) {
  std::vector<SignalingStep> seq;
  const auto append = [&seq](std::vector<SignalingStep> legs) {
    seq.insert(seq.end(), std::make_move_iterator(legs.begin()),
               std::make_move_iterator(legs.end()));
  };
  switch (t) {
    case HandoffType::k4G4G:
      append(lte_ho_legs());  // 30.1 ms
      break;
    case HandoffType::k5G5G: {
      // Release NR, LTE-anchor HO, re-add NR: 2.5+3 already inside
      // lte_ho_legs, so order release legs after the report/decision.
      auto lte = lte_ho_legs();
      seq.push_back(lte[0]);
      seq.push_back(lte[1]);
      append(nr_release_legs());
      for (std::size_t i = 2; i < lte.size(); ++i) seq.push_back(lte[i]);
      append(nr_addition_legs(/*sync_ms=*/20.0, /*rach_ms=*/20.0));
      break;  // totals 108.4 ms
    }
    case HandoffType::k4G5G:
      append(lte_ho_legs());
      append(nr_addition_legs(/*sync_ms=*/14.33, /*rach_ms=*/14.0));
      break;  // totals 80.23 ms
    case HandoffType::k5G4G: {
      auto lte = lte_ho_legs();
      seq.push_back(lte[0]);
      seq.push_back(lte[1]);
      append(nr_release_legs());
      for (std::size_t i = 2; i < lte.size(); ++i) seq.push_back(lte[i]);
      break;  // totals 46.6 ms
    }
  }
  return seq;
}

}  // namespace

const std::vector<SignalingStep>& handoff_sequence(HandoffType t) {
  static const std::vector<SignalingStep> k44 = build_sequence(HandoffType::k4G4G);
  static const std::vector<SignalingStep> k55 = build_sequence(HandoffType::k5G5G);
  static const std::vector<SignalingStep> k45 = build_sequence(HandoffType::k4G5G);
  static const std::vector<SignalingStep> k54 = build_sequence(HandoffType::k5G4G);
  switch (t) {
    case HandoffType::k4G4G:
      return k44;
    case HandoffType::k5G5G:
      return k55;
    case HandoffType::k4G5G:
      return k45;
    case HandoffType::k5G4G:
      return k54;
  }
  return k44;
}

sim::Time expected_handoff_latency(HandoffType t) {
  const auto& seq = handoff_sequence(t);
  const double total_ms = std::accumulate(
      seq.begin(), seq.end(), 0.0,
      [](double acc, const SignalingStep& s) { return acc + s.mean_ms; });
  return sim::from_millis(total_ms);
}

sim::Time sample_handoff_latency(HandoffType t, sim::Rng& rng) {
  double total_ms = 0.0;
  for (const SignalingStep& s : handoff_sequence(t)) {
    total_ms += std::max(0.3 * s.mean_ms, rng.normal(s.mean_ms, 0.15 * s.mean_ms));
  }
  return sim::from_millis(total_ms);
}

}  // namespace fiveg::ran

// Cells: one radiating sector of a base station, identified by its PCI
// (physical cell indicator) exactly as XCAL reports them in the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/geometry.h"
#include "radio/carrier.h"
#include "radio/link_budget.h"

namespace fiveg::ran {

/// One sector (cell) of an eNB/gNB site.
struct Cell {
  int pci = 0;             // physical cell indicator
  int site_id = 0;         // which eNB/gNB mast this sector hangs on
  radio::Rat rat = radio::Rat::kNr;
  radio::TxSite site{{0, 0}, radio::SectorAntenna(0.0)};
};

/// A UE-side measurement of one cell, the tuple XCAL logs per sample.
struct CellMeasurement {
  const Cell* cell = nullptr;
  double rsrp_dbm = -140.0;
  double rsrq_db = -25.0;
  double sinr_db = -10.0;

  /// True when the cell can provide service (paper: RSRP >= -105 dBm).
  [[nodiscard]] bool in_coverage() const noexcept;
};

/// Derives SINR and RSRQ for `n` co-channel cells from their RSRP values:
/// every other cell interferes at `interferer_load` on top of thermal
/// noise. `rsrp_dbm` is read, `lin_scratch` (capacity >= n) receives the
/// linear-mW conversions. The arithmetic — accumulation order included —
/// is the measure_cells() loop verbatim, so the scalar path and the
/// cohort batch stay bit-identical.
void derive_interference(const double* rsrp_dbm, double* lin_scratch,
                         std::size_t n, double noise_per_re_dbm,
                         double interferer_load, double* sinr_db,
                         double* rsrq_db);

/// Measures every cell in `cells` (all same RAT, co-channel) from `ue`,
/// treating all other cells as interferers at `interferer_load`.
[[nodiscard]] std::vector<CellMeasurement> measure_cells(
    const radio::RadioEnvironment& env, const radio::CarrierConfig& carrier,
    const std::vector<Cell>& cells, const geo::Point& ue,
    double interferer_load = 0.5);

/// Scratch-buffer overload: fills `out` (resized to cells.size()) instead
/// of allocating a fresh vector, so steady-state sweeps reuse capacity.
void measure_cells(const radio::RadioEnvironment& env,
                   const radio::CarrierConfig& carrier,
                   const std::vector<Cell>& cells, const geo::Point& ue,
                   double interferer_load, std::vector<CellMeasurement>& out);

/// Fills one flat measurement row — rsrp/sinr/rsrq, one value per plan
/// entry — for a UE at `pos`. `lin_scratch` needs capacity >= plan.size().
/// Bit-identical, value for value, to measure_cells() over the same cells.
void measure_cells_row(const radio::RadioEnvironment& env,
                       const radio::CarrierConfig& carrier,
                       const radio::SectorPlan& plan, const geo::Point& pos,
                       double interferer_load, double* rsrp_dbm,
                       double* sinr_db, double* rsrq_db, double* lin_scratch);

/// Cross-UE batched measurement: one row of plan.size() values per UE,
/// written at [u * plan.size()] in the flat output arrays. `order` (when
/// non-null, a permutation of [0, n_ue)) sets the visit order — spatial
/// ordering improves memo locality but never changes a value, because
/// each row is a pure function of its UE's position.
void measure_cells_batch(const radio::RadioEnvironment& env,
                         const radio::CarrierConfig& carrier,
                         const radio::SectorPlan& plan,
                         const geo::Point* positions,
                         const std::uint32_t* order, std::size_t n_ue,
                         double interferer_load, double* rsrp_dbm,
                         double* sinr_db, double* rsrq_db);

/// The strongest cell by RSRP, or nullptr-celled measurement when `cells`
/// is empty.
[[nodiscard]] CellMeasurement best_cell(
    const radio::RadioEnvironment& env, const radio::CarrierConfig& carrier,
    const std::vector<Cell>& cells, const geo::Point& ue,
    double interferer_load = 0.5);

}  // namespace fiveg::ran

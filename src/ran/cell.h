// Cells: one radiating sector of a base station, identified by its PCI
// (physical cell indicator) exactly as XCAL reports them in the paper.
#pragma once

#include <vector>

#include "radio/carrier.h"
#include "radio/link_budget.h"

namespace fiveg::ran {

/// One sector (cell) of an eNB/gNB site.
struct Cell {
  int pci = 0;             // physical cell indicator
  int site_id = 0;         // which eNB/gNB mast this sector hangs on
  radio::Rat rat = radio::Rat::kNr;
  radio::TxSite site{{0, 0}, radio::SectorAntenna(0.0)};
};

/// A UE-side measurement of one cell, the tuple XCAL logs per sample.
struct CellMeasurement {
  const Cell* cell = nullptr;
  double rsrp_dbm = -140.0;
  double rsrq_db = -25.0;
  double sinr_db = -10.0;

  /// True when the cell can provide service (paper: RSRP >= -105 dBm).
  [[nodiscard]] bool in_coverage() const noexcept;
};

/// Measures every cell in `cells` (all same RAT, co-channel) from `ue`,
/// treating all other cells as interferers at `interferer_load`.
[[nodiscard]] std::vector<CellMeasurement> measure_cells(
    const radio::RadioEnvironment& env, const radio::CarrierConfig& carrier,
    const std::vector<Cell>& cells, const geo::Point& ue,
    double interferer_load = 0.5);

/// The strongest cell by RSRP, or nullptr-celled measurement when `cells`
/// is empty.
[[nodiscard]] CellMeasurement best_cell(
    const radio::RadioEnvironment& env, const radio::CarrierConfig& carrier,
    const std::vector<Cell>& cells, const geo::Point& ue,
    double interferer_load = 0.5);

}  // namespace fiveg::ran

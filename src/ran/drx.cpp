#include "ran/drx.h"

namespace fiveg::ran {

RadioActivity connected_activity(const DrxConfig& drx,
                                 sim::Time since_activity) {
  if (since_activity < 0) return RadioActivity::kTransfer;
  if (since_activity < drx.inactivity) {
    // Inactivity timer still running: receiver fully on.
    return RadioActivity::kTailAwake;
  }
  if (since_activity >= drx.tail) {
    // Tail expired; caller should have moved to idle. Report paging sleep
    // so a stale query is still safe.
    return RadioActivity::kPagingSleep;
  }
  const sim::Time in_cycle =
      (since_activity - drx.inactivity) % drx.long_drx_cycle;
  return in_cycle < drx.on_duration ? RadioActivity::kTailAwake
                                    : RadioActivity::kTailSleep;
}

RadioActivity idle_activity(const DrxConfig& drx, sim::Time since_idle_start) {
  if (since_idle_start < 0) since_idle_start = 0;
  const sim::Time in_cycle = since_idle_start % drx.paging_cycle;
  return in_cycle < drx.on_duration ? RadioActivity::kPagingAwake
                                    : RadioActivity::kPagingSleep;
}

double tail_duty_cycle(const DrxConfig& drx) noexcept {
  return static_cast<double>(drx.on_duration) /
         static_cast<double>(drx.long_drx_cycle);
}

}  // namespace fiveg::ran

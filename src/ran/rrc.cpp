#include "ran/rrc.h"

namespace fiveg::ran {

std::string to_string(RrcState s) {
  switch (s) {
    case RrcState::kIdle:
      return "RRC_IDLE";
    case RrcState::kConnectedLte:
      return "RRC_CONNECTED(LTE)";
    case RrcState::kConnectedNr:
      return "RRC_CONNECTED(NR)";
    case RrcState::kInactive:
      return "RRC_INACTIVE";
  }
  return "?";
}

DrxConfig lte_drx() noexcept {
  DrxConfig c;
  c.inactivity = sim::from_millis(80);
  c.tail = sim::from_millis(10720);
  return c;
}

DrxConfig nr_nsa_drx() noexcept {
  DrxConfig c;
  c.inactivity = sim::from_millis(100);
  c.tail = sim::from_millis(21440);
  return c;
}

}  // namespace fiveg::ran

#include "report/report.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "measure/json.h"

namespace fiveg::report {

namespace {

// 2^53: beyond this doubles cannot hold every integer, so "integer-valued"
// stops being meaningful for the count heuristic below.
constexpr double kExactIntLimit = 9007199254740992.0;

void add_series_stats(const obs::JsonValue& series,
                      std::map<std::string, double>* metrics) {
  const obs::JsonValue* name = series.get("name");
  const obs::JsonValue* points = series.get("points");
  if (name == nullptr || !name->is(obs::JsonValue::Type::kString) ||
      points == nullptr || !points->is(obs::JsonValue::Type::kArray)) {
    return;
  }
  double sum = 0.0, min = 0.0, max = 0.0, last = 0.0;
  std::size_t n = 0;
  for (const obs::JsonValue& p : points->array) {
    if (!p.is(obs::JsonValue::Type::kArray) || p.array.size() != 2 ||
        !p.array[1].is(obs::JsonValue::Type::kNumber)) {
      continue;
    }
    const double y = p.array[1].number;
    if (n == 0) {
      min = max = y;
    } else {
      if (y < min) min = y;
      if (y > max) max = y;
    }
    sum += y;
    last = y;
    ++n;
  }
  const std::string prefix = "series." + name->string;
  (*metrics)[prefix + ".count"] = static_cast<double>(n);
  if (n > 0) {
    (*metrics)[prefix + ".mean"] = sum / static_cast<double>(n);
    (*metrics)[prefix + ".min"] = min;
    (*metrics)[prefix + ".max"] = max;
    (*metrics)[prefix + ".last"] = last;
  }
}

std::string json_number(double v) { return measure::JsonWriter::number(v); }

// CSV quoting is unnecessary here: metric names are code-chosen
// identifiers (no commas/quotes), values are JSON numbers.
void write_csv_row(std::ostream& os, const std::string& figure,
                   const std::string& metric, double value) {
  os << figure << ',' << metric << ',' << json_number(value) << '\n';
}

// One runall schema version's document parser, filling `out` (error or
// figures). Registered in kSchemaTable below.
void build_from_runall_v3(const obs::JsonValue& doc, BuildResult& out);

// Schema version dispatch: every runall schema this binary understands,
// mapped to its parser. v4 is a strict superset of v3 (it only adds
// timing-gated fields the report never reads), so both dispatch to the
// same parser; a future v5 that reshapes the document gets its own entry
// without touching the version check.
struct SchemaEntry {
  std::string_view schema;
  void (*build)(const obs::JsonValue& doc, BuildResult& out);
};
constexpr SchemaEntry kSchemaTable[] = {
    {"fiveg-runall/v3", &build_from_runall_v3},
    {"fiveg-runall/v4", &build_from_runall_v3},
};

}  // namespace

std::vector<std::string> supported_runall_schemas() {
  std::vector<std::string> out;
  for (const SchemaEntry& e : kSchemaTable) out.emplace_back(e.schema);
  return out;
}

BuildResult build_reports(const obs::JsonValue& doc) {
  BuildResult out;
  if (!doc.is(obs::JsonValue::Type::kObject)) {
    out.error = "top-level value is not an object";
    return out;
  }
  const obs::JsonValue* schema = doc.get("schema");
  if (schema == nullptr || !schema->is(obs::JsonValue::Type::kString)) {
    out.error = "missing \"schema\" string";
    return out;
  }
  for (const SchemaEntry& e : kSchemaTable) {
    if (schema->string == e.schema) {
      e.build(doc, out);
      return out;
    }
  }
  std::string supported;
  for (const SchemaEntry& e : kSchemaTable) {
    if (!supported.empty()) supported += ", ";
    supported += e.schema;
  }
  out.error = "unsupported schema \"" + schema->string + "\" (supported: " +
              supported + "; re-run fiveg_runall or upgrade fiveg_report)";
  return out;
}

namespace {

void build_from_runall_v3(const obs::JsonValue& doc, BuildResult& out) {
  const obs::JsonValue* experiments = doc.get("experiments");
  if (experiments == nullptr ||
      !experiments->is(obs::JsonValue::Type::kArray)) {
    out.error = "missing \"experiments\" array";
    return;
  }
  for (const obs::JsonValue& e : experiments->array) {
    if (!e.is(obs::JsonValue::Type::kObject)) continue;
    FigureReport fig;
    if (const obs::JsonValue* v = e.get("name");
        v != nullptr && v->is(obs::JsonValue::Type::kString)) {
      fig.id = v->string;
    }
    if (fig.id.empty()) continue;
    if (const obs::JsonValue* v = e.get("paper_ref");
        v != nullptr && v->is(obs::JsonValue::Type::kString)) {
      fig.paper_ref = v->string;
    }
    if (const obs::JsonValue* v = e.get("description");
        v != nullptr && v->is(obs::JsonValue::Type::kString)) {
      fig.description = v->string;
    }
    if (const obs::JsonValue* v = e.get("status");
        v != nullptr && v->is(obs::JsonValue::Type::kString)) {
      fig.status = v->string;
    }
    // Every flat counter key — plain counters, gauge maxima and the
    // histogram/digest percentile ladders all arrive here. `profile`
    // (wall clock) is deliberately ignored: reports must be
    // parallelism-independent.
    if (const obs::JsonValue* counters = e.get("counters");
        counters != nullptr && counters->is(obs::JsonValue::Type::kObject)) {
      for (const auto& [key, value] : counters->object) {
        if (value.is(obs::JsonValue::Type::kNumber)) {
          fig.metrics[key] = value.number;
        }
      }
    }
    if (const obs::JsonValue* metrics = e.get("metrics");
        metrics != nullptr && metrics->is(obs::JsonValue::Type::kArray)) {
      for (const obs::JsonValue& s : metrics->array) {
        add_series_stats(s, &fig.metrics);
      }
    }
    out.figures.push_back(std::move(fig));
  }
  std::sort(out.figures.begin(), out.figures.end(),
            [](const FigureReport& a, const FigureReport& b) {
              return a.id < b.id;
            });
}

}  // namespace

Tolerance default_tolerance(double value) {
  Tolerance t;
  if (std::abs(value) < kExactIntLimit && value == std::floor(value)) {
    // Counts: absorb a +-1 wobble (libm differences across platforms can
    // shift one sample over a threshold) without relaxing rel_tol.
    t.abs_tol = 1.5;
  }
  return t;
}

std::string Drift::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kValue:
      os << figure << ": " << metric << " = " << json_number(actual)
         << ", expected " << json_number(expected) << " (rel_tol "
         << json_number(tol.rel_tol) << ", abs_tol "
         << json_number(tol.abs_tol) << ")";
      break;
    case Kind::kMissingMetric:
      os << figure << ": " << metric << " missing (golden expects "
         << json_number(expected) << ")";
      break;
    case Kind::kNewMetric:
      os << figure << ": " << metric << " = " << json_number(actual)
         << " is new (not in golden; refresh with --update-golden)";
      break;
    case Kind::kStatus:
      os << figure << ": status changed";
      break;
  }
  return os.str();
}

std::vector<Drift> check_figure(const FigureReport& report,
                                const GoldenFigure& golden) {
  std::vector<Drift> drifts;
  if (report.status != golden.status) {
    Drift d;
    d.kind = Drift::Kind::kStatus;
    d.figure = report.id;
    drifts.push_back(std::move(d));
  }
  for (const auto& [name, entry] : golden.metrics) {
    const auto it = report.metrics.find(name);
    if (it == report.metrics.end()) {
      Drift d;
      d.kind = Drift::Kind::kMissingMetric;
      d.figure = report.id;
      d.metric = name;
      d.expected = entry.value;
      drifts.push_back(std::move(d));
      continue;
    }
    const double diff = std::abs(it->second - entry.value);
    const double allowed =
        entry.tol.abs_tol + entry.tol.rel_tol * std::abs(entry.value);
    if (!(diff <= allowed)) {  // NaN diff also flags
      Drift d;
      d.kind = Drift::Kind::kValue;
      d.figure = report.id;
      d.metric = name;
      d.expected = entry.value;
      d.actual = it->second;
      d.tol = entry.tol;
      drifts.push_back(std::move(d));
    }
  }
  for (const auto& [name, value] : report.metrics) {
    if (golden.metrics.find(name) == golden.metrics.end()) {
      Drift d;
      d.kind = Drift::Kind::kNewMetric;
      d.figure = report.id;
      d.metric = name;
      d.actual = value;
      drifts.push_back(std::move(d));
    }
  }
  return drifts;
}

bool parse_golden(const obs::JsonValue& doc, GoldenFigure* out,
                  std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!doc.is(obs::JsonValue::Type::kObject)) {
    return fail("golden is not an object");
  }
  const obs::JsonValue* schema = doc.get("schema");
  if (schema == nullptr || !schema->is(obs::JsonValue::Type::kString) ||
      schema->string != "fiveg-golden/v1") {
    return fail("golden schema is not fiveg-golden/v1");
  }
  const obs::JsonValue* figure = doc.get("figure");
  if (figure == nullptr || !figure->is(obs::JsonValue::Type::kString)) {
    return fail("golden missing \"figure\" string");
  }
  out->id = figure->string;
  if (const obs::JsonValue* status = doc.get("status");
      status != nullptr && status->is(obs::JsonValue::Type::kString)) {
    out->status = status->string;
  }
  const obs::JsonValue* metrics = doc.get("metrics");
  if (metrics == nullptr || !metrics->is(obs::JsonValue::Type::kObject)) {
    return fail("golden missing \"metrics\" object");
  }
  for (const auto& [name, m] : metrics->object) {
    if (!m.is(obs::JsonValue::Type::kObject)) {
      return fail("golden metric \"" + name + "\" is not an object");
    }
    const obs::JsonValue* value = m.get("value");
    if (value == nullptr || !value->is(obs::JsonValue::Type::kNumber)) {
      return fail("golden metric \"" + name + "\" missing numeric value");
    }
    GoldenEntry entry;
    entry.value = value->number;
    entry.tol = default_tolerance(entry.value);
    if (const obs::JsonValue* r = m.get("rel_tol");
        r != nullptr && r->is(obs::JsonValue::Type::kNumber)) {
      entry.tol.rel_tol = r->number;
    }
    if (const obs::JsonValue* a = m.get("abs_tol");
        a != nullptr && a->is(obs::JsonValue::Type::kNumber)) {
      entry.tol.abs_tol = a->number;
    }
    out->metrics.emplace(name, entry);
  }
  return true;
}

void write_figure_json(const FigureReport& report, std::ostream& os) {
  measure::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "fiveg-report/v1");
  w.kv("figure", report.id);
  w.kv("paper_ref", report.paper_ref);
  w.kv("description", report.description);
  w.kv("status", report.status);
  w.key("metrics");
  w.begin_object();
  for (const auto& [name, value] : report.metrics) w.kv(name, value);
  w.end_object();
  w.end_object();
  os << "\n";
}

void write_figure_csv(const FigureReport& report, std::ostream& os) {
  os << "figure,metric,value\n";
  for (const auto& [name, value] : report.metrics) {
    write_csv_row(os, report.id, name, value);
  }
}

void write_golden_json(const FigureReport& report, std::ostream& os) {
  measure::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "fiveg-golden/v1");
  w.kv("figure", report.id);
  w.kv("status", report.status);
  w.key("metrics");
  w.begin_object();
  for (const auto& [name, value] : report.metrics) {
    const Tolerance tol = default_tolerance(value);
    w.key(name);
    w.begin_object();
    w.kv("value", value);
    w.kv("rel_tol", tol.rel_tol);
    w.kv("abs_tol", tol.abs_tol);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

}  // namespace fiveg::report

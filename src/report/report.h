// Per-figure KPI reports built from a fiveg-runall/v3 document, plus the
// golden-baseline drift detector behind `fiveg_report --check`.
//
// Every experiment in the campaign maps to one FigureReport: a flat,
// sorted {metric name -> value} table assembled generically from the
// experiment's deterministic outputs — the flat `counters` object (which
// already carries digest percentile ladders as `name.p05`-style keys) and
// summary statistics of each KPI series. Because only kSim data feeds the
// table, a report is byte-identical for any --jobs value, which is what
// lets the determinism tier diff report artifacts directly.
//
// Goldens are per-figure JSON files (bench/golden/<figure>.json) holding
// {value, rel_tol, abs_tol} per metric. A metric passes when
// |actual - expected| <= abs_tol + rel_tol * |expected|; anything else —
// including metrics that appear or disappear — is drift.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/json_check.h"

namespace fiveg::report {

/// One figure/table artifact: the experiment's deterministic KPI table.
struct FigureReport {
  std::string id;           // experiment name, e.g. "fig7_throughput"
  std::string paper_ref;    // e.g. "Figure 7"
  std::string description;  // one-line experiment description
  std::string status;       // "ok" / "failed" / "timed_out"
  // Sorted metric table: every numeric key of the experiment's `counters`
  // object plus `series.<name>.{count,mean,min,max,last}` per KPI series.
  std::map<std::string, double> metrics;
};

/// Result of building reports from a runall document.
struct BuildResult {
  std::vector<FigureReport> figures;  // sorted by id
  std::string error;                  // nonempty on schema mismatch
  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Builds one FigureReport per experiment from a parsed fiveg-runall
/// document. Schema versions are resolved through a dispatch table
/// (currently v3 and v4, which share a parser); an unknown version is an
/// error naming the offending schema string and the supported list.
[[nodiscard]] BuildResult build_reports(const obs::JsonValue& doc);

/// The runall schema versions build_reports understands, in dispatch
/// order (e.g. {"fiveg-runall/v3", "fiveg-runall/v4"}).
[[nodiscard]] std::vector<std::string> supported_runall_schemas();

/// Per-metric drift tolerance; pass iff
/// |actual - expected| <= abs_tol + rel_tol * |expected|.
struct Tolerance {
  double rel_tol = 0.05;
  double abs_tol = 1e-9;
};

/// Default tolerance for a metric value: integer-valued metrics (event
/// counts, residency milliseconds) get abs_tol 1.5 so a single-count
/// wobble from cross-platform libm jitter never flags; everything else is
/// rel_tol-only, keeping small fractions (coverage holes) sensitive.
[[nodiscard]] Tolerance default_tolerance(double value);

/// One expected metric in a golden baseline.
struct GoldenEntry {
  double value = 0.0;
  Tolerance tol;
};

/// Parsed golden baseline for one figure.
struct GoldenFigure {
  std::string id;
  std::string status = "ok";
  std::map<std::string, GoldenEntry> metrics;
};

/// One detected deviation from the golden baseline.
struct Drift {
  enum class Kind {
    kValue,          // metric outside tolerance
    kMissingMetric,  // in golden, absent from the report
    kNewMetric,      // in the report, absent from golden
    kStatus,         // experiment status changed
  };
  Kind kind = Kind::kValue;
  std::string figure;
  std::string metric;      // empty for kStatus
  double expected = 0.0;   // kValue / kMissingMetric
  double actual = 0.0;     // kValue / kNewMetric
  Tolerance tol;           // kValue
  [[nodiscard]] std::string describe() const;
};

/// Compares one report against its golden. Empty result = no drift.
[[nodiscard]] std::vector<Drift> check_figure(const FigureReport& report,
                                              const GoldenFigure& golden);

/// Parses a golden file (schema "fiveg-golden/v1"). Returns false and
/// fills `error` on malformed input.
[[nodiscard]] bool parse_golden(const obs::JsonValue& doc,
                                GoldenFigure* out, std::string* error);

/// Machine-readable per-figure artifact (schema "fiveg-report/v1").
void write_figure_json(const FigureReport& report, std::ostream& os);

/// CSV artifact: `figure,metric,value` rows (header included).
void write_figure_csv(const FigureReport& report, std::ostream& os);

/// Golden baseline for a report, with default_tolerance() per metric.
void write_golden_json(const FigureReport& report, std::ostream& os);

}  // namespace fiveg::report

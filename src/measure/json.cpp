#include "measure/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace fiveg::measure {

JsonWriter::JsonWriter(std::ostream& os, bool compact)
    : os_(os), compact_(compact) {}

void JsonWriter::prefix() {
  if (key_pending_) {
    // A key was just written; the value follows on the same line.
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (stack_.back().has_elements) os_ << ",";
  if (!compact_) {
    os_ << "\n";
    indent();
  }
  stack_.back().has_elements = true;
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::begin_object() {
  prefix();
  os_ << "{";
  stack_.push_back({true, false});
}

void JsonWriter::end_object() {
  const bool had = stack_.back().has_elements;
  stack_.pop_back();
  if (had && !compact_) {
    os_ << "\n";
    indent();
  }
  os_ << "}";
}

void JsonWriter::begin_array() {
  prefix();
  os_ << "[";
  stack_.push_back({false, false});
}

void JsonWriter::end_array() {
  const bool had = stack_.back().has_elements;
  stack_.pop_back();
  if (had && !compact_) {
    os_ << "\n";
    indent();
  }
  os_ << "]";
}

void JsonWriter::key(std::string_view k) {
  prefix();
  os_ << '"' << escape(k) << (compact_ ? "\":" : "\": ");
  key_pending_ = true;
}

void JsonWriter::value(std::string_view v) {
  prefix();
  os_ << '"' << escape(v) << '"';
}

void JsonWriter::value(double v) {
  prefix();
  os_ << number(v);
}

void JsonWriter::value(std::uint64_t v) {
  prefix();
  os_ << v;
}

void JsonWriter::value(std::int64_t v) {
  prefix();
  os_ << v;
}

void JsonWriter::value(bool v) {
  prefix();
  os_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  prefix();
  os_ << "null";
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers (within exact double range) print without a fraction so that
  // counts stay readable; everything else round-trips via %.17g.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace fiveg::measure

// Plain-text table rendering for the bench harness: every reproduced table
// or figure is printed as aligned columns, typically with a "paper" column
// next to the "measured" one.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace fiveg::measure {

/// Column-aligned text table with a title and header row.
class TextTable {
 public:
  TextTable(std::string title, std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded).
  void add_row(std::vector<std::string> cells);

  /// Renders with a title rule, header, separator and aligned columns.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Formats a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);

  /// Formats "mean ± std".
  static std::string pm(double mean, double std, int precision = 2);

  /// Formats a percentage, e.g. 0.0807 -> "8.07%".
  static std::string pct(double fraction, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fiveg::measure

#include "measure/timeseries.h"

#include <algorithm>
#include <stdexcept>

namespace fiveg::measure {

RunningStats TimeSeries::summarize(sim::Time from, sim::Time to) const {
  RunningStats s;
  for (const TimePoint& p : points_) {
    if (p.at >= from && p.at <= to) s.add(p.value);
  }
  return s;
}

RunningStats TimeSeries::summarize() const {
  RunningStats s;
  for (const TimePoint& p : points_) s.add(p.value);
  return s;
}

namespace {

std::vector<TimePoint> windowed(const std::vector<TimePoint>& points,
                                sim::Time from, sim::Time to,
                                sim::Time window, bool mean) {
  if (window <= 0) throw std::invalid_argument("window must be positive");
  if (to < from) return {};
  const auto n_windows =
      static_cast<std::size_t>((to - from) / window) + 1;
  std::vector<double> sums(n_windows, 0.0);
  std::vector<std::size_t> counts(n_windows, 0);
  for (const TimePoint& p : points) {
    if (p.at < from || p.at > to) continue;
    const auto idx = static_cast<std::size_t>((p.at - from) / window);
    sums[idx] += p.value;
    ++counts[idx];
  }
  std::vector<TimePoint> out;
  out.reserve(n_windows);
  for (std::size_t i = 0; i < n_windows; ++i) {
    double v = sums[i];
    if (mean) v = counts[i] ? v / static_cast<double>(counts[i]) : 0.0;
    out.push_back({from + static_cast<sim::Time>(i) * window, v});
  }
  return out;
}

}  // namespace

std::vector<TimePoint> TimeSeries::window_sums(sim::Time from, sim::Time to,
                                               sim::Time window) const {
  return windowed(points_, from, to, window, /*mean=*/false);
}

std::vector<TimePoint> TimeSeries::window_means(sim::Time from, sim::Time to,
                                                sim::Time window) const {
  return windowed(points_, from, to, window, /*mean=*/true);
}

}  // namespace fiveg::measure

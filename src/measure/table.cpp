#include "measure/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/prof.h"

namespace fiveg::measure {

TextTable::TextTable(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  // Table rendering is the self-profiler's "report" phase.
  const obs::prof::ScopedPhase phase("report");
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::size_t total = header_.empty() ? 0 : 3 * (header_.size() - 1);
  for (const std::size_t w : widths) total += w;

  os << "== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << " | ";
    }
    os << "\n";
  };
  print_row(header_);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os << "\n";
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TextTable::pm(double mean, double std, int precision) {
  return num(mean, precision) + " +/- " + num(std, precision);
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

}  // namespace fiveg::measure

// Minimal streaming JSON writer for machine-readable experiment results.
// Produces deterministic output: stable key order is the caller's job, and
// number formatting is byte-stable for a given value (integers print as
// integers, other finite doubles round-trip via %.17g, non-finite -> null).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace fiveg::measure {

/// Streaming writer with a container stack: begin/end objects and arrays,
/// interleave key() and value() calls. Pretty-prints with 2-space indent by
/// default; `compact` emits no whitespace at all (one-line documents, e.g.
/// the campaign ledger's JSONL records).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool compact = false);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member (must be inside an object).
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// key() + value() in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// JSON string escaping (quotes, backslash, control characters); UTF-8
  /// payload bytes pass through untouched.
  static std::string escape(std::string_view s);

  /// Byte-stable number rendering; NaN/Inf render as "null".
  static std::string number(double v);

 private:
  void prefix();  // comma/newline/indent before a new element
  void indent();

  std::ostream& os_;
  bool compact_ = false;
  // One frame per open container: is_object, and whether it has elements.
  struct Frame {
    bool object = false;
    bool has_elements = false;
  };
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

}  // namespace fiveg::measure

// Empirical CDFs — the paper presents most distributions (hand-off latency,
// RSRQ gaps, throughput drops) as CDF plots; benches print sampled series
// from these objects.
#pragma once

#include <cstddef>
#include <vector>

namespace fiveg::measure {

/// Empirical cumulative distribution over a sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  /// Adds one sample (invalidates nothing; sorting is lazy).
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Value below which `q` (in [0,1]) of the mass lies, by linear
  /// interpolation between order statistics (the "type 7" convention:
  /// position q*(n-1) over the sorted samples). Pinned endpoints:
  /// quantile(0) is the sample minimum and quantile(1) the sample maximum
  /// — exactly, with no interpolation or extrapolation — and q outside
  /// [0,1] is clamped to those endpoints. A single-sample CDF returns
  /// that sample for every q. Throws std::logic_error when empty().
  [[nodiscard]] double quantile(double q) const;

  /// Fraction of samples <= x, in [0,1].
  [[nodiscard]] double fraction_below(double x) const;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Evenly spaced (value, cumulative-fraction) points for printing a CDF
  /// curve with `n` rows.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t n) const;

  /// The sorted sample values.
  [[nodiscard]] const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace fiveg::measure

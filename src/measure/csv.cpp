#include "measure/csv.h"

#include <ostream>

namespace fiveg::measure {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv(std::ostream& os, const std::string& name,
               const TimeSeries& series) {
  os << "t_seconds," << csv_escape(name) << "\n";
  for (const TimePoint& p : series.points()) {
    os << sim::to_seconds(p.at) << "," << p.value << "\n";
  }
}

void write_csv(std::ostream& os, const KpiLogger& log) {
  os << "kpi,t_seconds,value\n";
  for (const std::string& name : log.kpi_names()) {
    const auto series = log.find(name);
    if (!series) continue;  // kpi_names() only returns logged KPIs
    for (const TimePoint& p : series->get().points()) {
      os << csv_escape(name) << "," << sim::to_seconds(p.at) << ","
         << p.value << "\n";
    }
  }
}

void write_events_csv(std::ostream& os, const KpiLogger& log) {
  os << "t_seconds,type,detail\n";
  for (const SignalingEvent& e : log.events()) {
    os << sim::to_seconds(e.at) << "," << csv_escape(e.type) << ","
       << csv_escape(e.detail) << "\n";
  }
}

}  // namespace fiveg::measure

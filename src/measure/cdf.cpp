#include "measure/cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fiveg::measure {

Cdf::Cdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty CDF");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double Cdf::fraction_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Cdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Cdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = n == 1 ? 1.0
                            : static_cast<double>(i) /
                                  static_cast<double>(n - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace fiveg::measure

// Streaming summary statistics (Welford's algorithm) — the workhorse behind
// every "mean ± std" cell in the reproduced tables.
#pragma once

#include <cstddef>
#include <limits>

namespace fiveg::measure {

/// Single-pass count/mean/variance/min/max accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-composition identity holds).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace fiveg::measure

// ASCII charts for the bench harness: the paper's figures are plots, so
// the benches render the reproduced series as terminal line charts and CDF
// curves next to the numeric tables.
#pragma once

#include <string>
#include <vector>

#include "measure/cdf.h"
#include "measure/timeseries.h"

namespace fiveg::measure {

/// Rendering options shared by the chart functions.
struct PlotOptions {
  int width = 72;   // plot area columns (exclusive of the y-axis gutter)
  int height = 14;  // plot area rows
  std::string title;
  std::string y_label;
  std::string x_label;
};

/// Renders (time, value) points as a line chart; x is seconds.
[[nodiscard]] std::string line_chart(const std::vector<TimePoint>& points,
                                     const PlotOptions& options);

/// Renders two series on one chart ('*' and 'o'), sharing axes.
[[nodiscard]] std::string line_chart2(const std::vector<TimePoint>& a,
                                      const std::vector<TimePoint>& b,
                                      const PlotOptions& options);

/// Renders an empirical CDF (y: 0..1).
[[nodiscard]] std::string cdf_chart(const Cdf& cdf,
                                    const PlotOptions& options);

}  // namespace fiveg::measure

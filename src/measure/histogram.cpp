#include "measure/histogram.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace fiveg::measure {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) {
    throw std::invalid_argument("Histogram needs at least two bin edges");
  }
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument("Histogram edges must be strictly increasing");
  }
  counts_.assign(edges_.size() - 1, 0);
}

Histogram Histogram::uniform(double lo, double hi, std::size_t n) {
  if (n == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram::uniform needs hi > lo and n > 0");
  }
  std::vector<double> edges(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n);
  }
  return Histogram(std::move(edges));
}

void Histogram::add(double x) {
  // upper_bound - 1 gives the bin whose lower edge is <= x; clamp the ends.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  std::size_t idx = 0;
  if (it == edges_.begin()) {
    idx = 0;
  } else {
    idx = static_cast<std::size_t>(it - edges_.begin()) - 1;
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0
             ? 0.0
             : static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::bin_label(std::size_t bin) const {
  std::ostringstream os;
  os << "[" << edges_.at(bin) << ", " << edges_.at(bin + 1) << ")";
  return os.str();
}

}  // namespace fiveg::measure

// The XCAL-Mobile substitute: a passive logger that the simulated stack
// feeds with physical-layer KPIs (RSRP, RSRQ, SINR, CQI, MCS, PRBs, …) and
// control-plane signalling events (RRC reconfigurations, hand-off legs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "measure/timeseries.h"
#include "sim/time.h"

namespace fiveg::measure {

/// One control-plane signalling record.
struct SignalingEvent {
  sim::Time at;
  std::string type;     // e.g. "A3_TRIGGER", "LTE_RACH", "NR_RACH_SUCCESS"
  std::string detail;   // free-form, e.g. "pci=72 -> pci=44"
};

/// Cross-layer measurement log, keyed by KPI name.
///
/// The logger caps the number of DISTINCT series it will create
/// (set_series_cap, default 1024): city-scale cohorts must aggregate into
/// labeled obs digests, and a per-UE naming bug (e.g. "rsrp_ue_4711")
/// would otherwise silently mint one series per UE. Observations for a
/// new KPI beyond the cap are dropped (a one-time stderr warning), while
/// existing series keep growing.
class KpiLogger {
 public:
  /// Appends a numeric KPI observation. Dropped (with a one-time warning)
  /// if `kpi` is new and the logger already holds series_cap() series.
  void log(const std::string& kpi, sim::Time at, double value);

  /// Appends a signalling event.
  void log_event(sim::Time at, std::string type, std::string detail = {});

  /// Series for one KPI, or nothing if that KPI was never logged. The
  /// empty case is explicit, and the reference (when present) always
  /// points into THIS logger. (The old series() accessor — which aliased
  /// every never-logged KPI to one shared empty series — is gone; new
  /// instrumentation should prefer the obs layer, obs::metrics() /
  /// obs::tracer(), over growing this logger.)
  [[nodiscard]] std::optional<std::reference_wrapper<const TimeSeries>> find(
      const std::string& kpi) const;

  /// True iff `kpi` has at least one logged observation.
  [[nodiscard]] bool has(const std::string& kpi) const {
    return series_.find(kpi) != series_.end();
  }

  [[nodiscard]] const std::vector<SignalingEvent>& events() const noexcept {
    return events_;
  }

  /// Events of one type, in time order.
  [[nodiscard]] std::vector<SignalingEvent> events_of_type(
      const std::string& type) const;

  /// All KPI names seen so far, sorted.
  [[nodiscard]] std::vector<std::string> kpi_names() const;

  /// Max number of distinct KPI series this logger will create.
  [[nodiscard]] std::size_t series_cap() const noexcept { return series_cap_; }
  /// Adjusts the cap. Series already created are never evicted, so
  /// lowering the cap below the current count only blocks new names.
  void set_series_cap(std::size_t cap) noexcept { series_cap_ = cap; }

  /// Observations dropped because their (new) KPI hit the series cap.
  [[nodiscard]] std::uint64_t refused_observations() const noexcept {
    return refused_;
  }

 private:
  std::map<std::string, TimeSeries> series_;
  std::vector<SignalingEvent> events_;
  std::size_t series_cap_ = 1024;
  std::uint64_t refused_ = 0;
  bool warned_ = false;
};

}  // namespace fiveg::measure

// The XCAL-Mobile substitute: a passive logger that the simulated stack
// feeds with physical-layer KPIs (RSRP, RSRQ, SINR, CQI, MCS, PRBs, …) and
// control-plane signalling events (RRC reconfigurations, hand-off legs).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "measure/timeseries.h"
#include "sim/time.h"

namespace fiveg::measure {

/// One control-plane signalling record.
struct SignalingEvent {
  sim::Time at;
  std::string type;     // e.g. "A3_TRIGGER", "LTE_RACH", "NR_RACH_SUCCESS"
  std::string detail;   // free-form, e.g. "pci=72 -> pci=44"
};

/// Cross-layer measurement log, keyed by KPI name.
class KpiLogger {
 public:
  /// Appends a numeric KPI observation.
  void log(const std::string& kpi, sim::Time at, double value);

  /// Appends a signalling event.
  void log_event(sim::Time at, std::string type, std::string detail = {});

  /// Series for one KPI, or nothing if that KPI was never logged. The
  /// empty case is explicit, and the reference (when present) always
  /// points into THIS logger. (The old series() accessor — which aliased
  /// every never-logged KPI to one shared empty series — is gone; new
  /// instrumentation should prefer the obs layer, obs::metrics() /
  /// obs::tracer(), over growing this logger.)
  [[nodiscard]] std::optional<std::reference_wrapper<const TimeSeries>> find(
      const std::string& kpi) const;

  /// True iff `kpi` has at least one logged observation.
  [[nodiscard]] bool has(const std::string& kpi) const {
    return series_.find(kpi) != series_.end();
  }

  [[nodiscard]] const std::vector<SignalingEvent>& events() const noexcept {
    return events_;
  }

  /// Events of one type, in time order.
  [[nodiscard]] std::vector<SignalingEvent> events_of_type(
      const std::string& type) const;

  /// All KPI names seen so far, sorted.
  [[nodiscard]] std::vector<std::string> kpi_names() const;

 private:
  std::map<std::string, TimeSeries> series_;
  std::vector<SignalingEvent> events_;
};

}  // namespace fiveg::measure

// CSV export — the paper shipped its dataset publicly; these helpers let
// every experiment dump its KPI series / hand-off logs in a form that
// plots with any external tool.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "measure/kpi_logger.h"
#include "measure/timeseries.h"

namespace fiveg::measure {

/// Writes one time series as `t_seconds,<name>` rows with a header.
void write_csv(std::ostream& os, const std::string& name,
               const TimeSeries& series);

/// Writes several series joined on their own timestamps (long format:
/// `kpi,t_seconds,value`).
void write_csv(std::ostream& os, const KpiLogger& log);

/// Writes the signalling events: `t_seconds,type,detail` (detail quoted).
void write_events_csv(std::ostream& os, const KpiLogger& log);

/// Escapes a CSV field (quotes it when it contains commas/quotes).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace fiveg::measure

// Fixed-bin histograms, used for the paper's binned tables (e.g. Table 2's
// RSRP ranges) and for the HARQ retransmission-count distribution.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fiveg::measure {

/// Histogram over user-supplied bin edges. A sample lands in bin i when
/// edges[i] <= x < edges[i+1]; out-of-range samples go to saturating end
/// bins so nothing is silently dropped.
class Histogram {
 public:
  /// `edges` must be strictly increasing with at least two entries.
  explicit Histogram(std::vector<double> edges);

  /// Convenience: `n` equal bins across [lo, hi).
  static Histogram uniform(double lo, double hi, std::size_t n);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Fraction of all samples in `bin` (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Inclusive-exclusive range of a bin, e.g. "[-90, -80)".
  [[nodiscard]] std::string bin_label(std::size_t bin) const;

  [[nodiscard]] const std::vector<double>& edges() const noexcept {
    return edges_;
  }

 private:
  std::vector<double> edges_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fiveg::measure

#include "measure/kpi_logger.h"

#include <cstdio>
#include <utility>

namespace fiveg::measure {

void KpiLogger::log(const std::string& kpi, sim::Time at, double value) {
  const auto it = series_.find(kpi);
  if (it != series_.end()) {
    it->second.add(at, value);
    return;
  }
  if (series_.size() >= series_cap_) {
    ++refused_;
    if (!warned_) {
      warned_ = true;
      std::fprintf(stderr,
                   "KpiLogger: series cap (%zu) reached; dropping new KPI "
                   "\"%s\" (aggregate per-UE KPIs into obs digests instead)\n",
                   series_cap_, kpi.c_str());
    }
    return;
  }
  series_[kpi].add(at, value);
}

void KpiLogger::log_event(sim::Time at, std::string type, std::string detail) {
  events_.push_back({at, std::move(type), std::move(detail)});
}

std::optional<std::reference_wrapper<const TimeSeries>> KpiLogger::find(
    const std::string& kpi) const {
  const auto it = series_.find(kpi);
  if (it == series_.end()) return std::nullopt;
  return std::cref(it->second);
}

std::vector<SignalingEvent> KpiLogger::events_of_type(
    const std::string& type) const {
  std::vector<SignalingEvent> out;
  for (const SignalingEvent& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::vector<std::string> KpiLogger::kpi_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

}  // namespace fiveg::measure

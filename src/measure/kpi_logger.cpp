#include "measure/kpi_logger.h"

#include <utility>

namespace fiveg::measure {

void KpiLogger::log(const std::string& kpi, sim::Time at, double value) {
  series_[kpi].add(at, value);
}

void KpiLogger::log_event(sim::Time at, std::string type, std::string detail) {
  events_.push_back({at, std::move(type), std::move(detail)});
}

std::optional<std::reference_wrapper<const TimeSeries>> KpiLogger::find(
    const std::string& kpi) const {
  const auto it = series_.find(kpi);
  if (it == series_.end()) return std::nullopt;
  return std::cref(it->second);
}

std::vector<SignalingEvent> KpiLogger::events_of_type(
    const std::string& type) const {
  std::vector<SignalingEvent> out;
  for (const SignalingEvent& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::vector<std::string> KpiLogger::kpi_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

}  // namespace fiveg::measure

// Time-stamped sample series: throughput-over-time, cwnd evolution, power
// traces. Provides windowed resampling because the paper reports (e.g.)
// throughput over 10 ms windows.
#pragma once

#include <cstddef>
#include <vector>

#include "measure/stats.h"
#include "sim/time.h"

namespace fiveg::measure {

/// One (time, value) observation.
struct TimePoint {
  sim::Time at;
  double value;
};

/// Append-only series of timed observations.
class TimeSeries {
 public:
  void add(sim::Time at, double value) { points_.push_back({at, value}); }

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<TimePoint>& points() const noexcept {
    return points_;
  }

  /// Summary over values between `from` and `to` (inclusive).
  [[nodiscard]] RunningStats summarize(sim::Time from, sim::Time to) const;

  /// Summary over all values.
  [[nodiscard]] RunningStats summarize() const;

  /// Sums values per window of width `window` starting at `from`; returns
  /// one point per window stamped at the window start. Used to turn
  /// per-packet byte logs into windowed throughput.
  [[nodiscard]] std::vector<TimePoint> window_sums(sim::Time from,
                                                   sim::Time to,
                                                   sim::Time window) const;

  /// Means per window (empty windows yield 0).
  [[nodiscard]] std::vector<TimePoint> window_means(sim::Time from,
                                                    sim::Time to,
                                                    sim::Time window) const;

 private:
  std::vector<TimePoint> points_;
};

}  // namespace fiveg::measure

#include "measure/plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace fiveg::measure {
namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;

  [[nodiscard]] int bucket(double v, int n) const noexcept {
    if (hi <= lo) return 0;
    const double t = (v - lo) / (hi - lo);
    return std::clamp(static_cast<int>(t * (n - 1) + 0.5), 0, n - 1);
  }
};

Range x_range(const std::vector<TimePoint>& pts) {
  Range r{std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
  for (const TimePoint& p : pts) {
    r.lo = std::min(r.lo, sim::to_seconds(p.at));
    r.hi = std::max(r.hi, sim::to_seconds(p.at));
  }
  if (!(r.lo < r.hi)) r = {0.0, 1.0};
  return r;
}

Range y_range(const std::vector<TimePoint>& pts) {
  Range r{std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
  for (const TimePoint& p : pts) {
    r.lo = std::min(r.lo, p.value);
    r.hi = std::max(r.hi, p.value);
  }
  if (!(r.lo < r.hi)) r = {r.lo - 1.0, r.lo + 1.0};
  return r;
}

std::string fmt(double v) {
  std::ostringstream ss;
  if (std::fabs(v) >= 1000) {
    ss << std::fixed << std::setprecision(0) << v;
  } else {
    ss << std::setprecision(3) << v;
  }
  return ss.str();
}

// Shared renderer: plots one or two point sets on a character grid.
std::string render(const std::vector<TimePoint>& a,
                   const std::vector<TimePoint>* b, Range xr, Range yr,
                   const PlotOptions& o) {
  const int w = std::max(o.width, 16);
  const int h = std::max(o.height, 4);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  const auto put = [&](const std::vector<TimePoint>& pts, char mark) {
    for (const TimePoint& p : pts) {
      const int col = xr.bucket(sim::to_seconds(p.at), w);
      const int row = h - 1 - yr.bucket(p.value, h);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          mark;
    }
  };
  put(a, '*');
  if (b != nullptr) put(*b, 'o');

  std::ostringstream os;
  if (!o.title.empty()) os << o.title << "\n";
  const std::string hi_label = fmt(yr.hi);
  const std::string lo_label = fmt(yr.lo);
  const std::size_t gutter = std::max(hi_label.size(), lo_label.size()) + 1;
  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0) label = hi_label;
    if (r == h - 1) label = lo_label;
    os << std::setw(static_cast<int>(gutter)) << label << "|"
       << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(gutter, ' ') << "+" << std::string(w, '-') << "\n"
     << std::string(gutter + 1, ' ') << fmt(xr.lo)
     << std::string(std::max<int>(1, w - 12), ' ') << fmt(xr.hi);
  if (!o.x_label.empty()) os << "  (" << o.x_label << ")";
  if (!o.y_label.empty()) os << "  y: " << o.y_label;
  os << "\n";
  return os.str();
}

}  // namespace

std::string line_chart(const std::vector<TimePoint>& points,
                       const PlotOptions& options) {
  return render(points, nullptr, x_range(points), y_range(points), options);
}

std::string line_chart2(const std::vector<TimePoint>& a,
                        const std::vector<TimePoint>& b,
                        const PlotOptions& options) {
  std::vector<TimePoint> all = a;
  all.insert(all.end(), b.begin(), b.end());
  return render(a, &b, x_range(all), y_range(all), options);
}

std::string cdf_chart(const Cdf& cdf, const PlotOptions& options) {
  std::vector<TimePoint> pts;
  if (!cdf.empty()) {
    for (const auto& [value, fraction] : cdf.curve(
             static_cast<std::size_t>(std::max(options.width, 16)))) {
      // Reuse the line renderer with value on x: encode x as "seconds".
      pts.push_back({sim::from_seconds(value), fraction});
    }
  }
  PlotOptions o = options;
  if (o.y_label.empty()) o.y_label = "CDF";
  return render(pts, nullptr, x_range(pts), Range{0.0, 1.0}, o);
}

}  // namespace fiveg::measure

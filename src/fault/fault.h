// Deterministic, schedule-driven fault injection. A FaultPlan is a list of
// timed fault windows (sector outage, link burst loss, link delay spikes,
// server stall, coverage hole); a Runtime holds the plan's live on/off
// state and is installed thread-locally (ScopedFaults, mirroring
// obs::ScopedObs). Every sim::Simulator arms the plan at construction:
// window begin/end toggles are ordinary labelled events, so fault timing
// is part of the deterministic event order and byte-identical at any
// --jobs value. Injection points across the stack (net::Link, ran, radio,
// tcp) query fault::runtime() and do nothing when it is null — with no
// plan installed the whole path is inert.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace fiveg::sim {
class Simulator;
}

namespace fiveg::fault {

/// The injector catalogue (see DESIGN.md §8 for the mapping to paper
/// failure modes).
enum class FaultKind {
  kSectorOutage,  // a cell's PCI stops transmitting (RLF / re-establishment)
  kLinkLoss,      // Bernoulli packet drop on matching net::Links
  kLinkDelay,     // extra one-way delay on matching net::Links (bufferbloat)
  kServerStall,   // the sending application stops writing new data
  kCoverageHole,  // extra path loss on every radio link (shadowing offset)
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// One timed fault window, active over [begin, end).
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkLoss;
  sim::Time begin = 0;
  sim::Time end = 0;
  int pci = -1;               // kSectorOutage: the cell to take down
  std::string link;           // kLinkLoss/kLinkDelay: substring match on the
                              // Link name; empty matches every link
  double loss = 0.0;          // kLinkLoss: drop probability in [0, 1]
  sim::Time extra_delay = 0;  // kLinkDelay: added one-way delay
  double offset_db = 0.0;     // kCoverageHole: extra path loss in dB
};

/// An immutable fault schedule, built programmatically via add() or from
/// the JSON spec ("fiveg-faults/v1", see parse_json).
class FaultPlan {
 public:
  /// Validates and appends one window. Throws std::invalid_argument on a
  /// malformed spec (end <= begin, loss outside [0,1], missing pci, ...).
  void add(FaultSpec spec);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept {
    return specs_;
  }
  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }
  [[nodiscard]] bool has_kind(FaultKind kind) const noexcept;

  /// Parses the JSON spec:
  ///   { "schema": "fiveg-faults/v1", "faults": [
  ///       {"kind": "sector_outage", "begin_s": 30, "end_s": 60, "pci": 60},
  ///       {"kind": "link_loss", "begin_s": 5, "end_s": 8,
  ///        "link": "wired", "loss": 0.3},
  ///       {"kind": "link_delay", "begin_s": 10, "end_s": 12,
  ///        "extra_delay_ms": 40},
  ///       {"kind": "server_stall", "begin_s": 14, "end_s": 15},
  ///       {"kind": "coverage_hole", "begin_s": 20, "end_s": 40,
  ///        "offset_db": 30} ] }
  /// Throws std::runtime_error with a message on any malformation.
  [[nodiscard]] static FaultPlan parse_json(std::string_view text);

  /// Reads `path` and parses it. Throws std::runtime_error.
  [[nodiscard]] static FaultPlan load(const std::string& path);

 private:
  std::vector<FaultSpec> specs_;
};

/// Live fault state for one experiment: which plan windows are currently
/// active, plus the seed injection points fork their private RNG streams
/// from. Mutated only by the toggles arm() schedules, queried from the
/// injection points; single-threaded like everything else per experiment.
class Runtime {
 public:
  /// `plan` must outlive the runtime. `seed` should be forked per
  /// experiment (the Runner uses Rng(exp_seed).fork("fault")) so fault
  /// randomness never perturbs the experiment's own streams.
  Runtime(const FaultPlan* plan, std::uint64_t seed);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  // --- hot-path queries (called per packet / per measurement sample) ---

  /// True while a sector-outage window covering `pci` is active.
  [[nodiscard]] bool cell_down(int pci) const noexcept {
    if (down_.empty()) return false;
    for (const auto& [down_pci, count] : down_) {
      if (down_pci == pci && count > 0) return true;
    }
    return false;
  }

  /// Extra path loss (dB) from the active coverage-hole windows.
  [[nodiscard]] double coverage_offset_db() const noexcept {
    return coverage_offset_db_;
  }

  /// True while a server-stall window is active.
  [[nodiscard]] bool server_stalled() const noexcept {
    return server_stall_depth_ > 0;
  }

  /// Combined drop probability of the active loss windows matching
  /// `link_name` (independent drops: 1 - prod(1 - p)).
  [[nodiscard]] double link_loss(std::string_view link_name) const;

  /// Summed extra delay of the active delay windows matching `link_name`.
  [[nodiscard]] sim::Time link_extra_delay(std::string_view link_name) const;

  // --- toggles, driven by the events arm() schedules ---

  void set_active(std::size_t spec_index, bool on);
  [[nodiscard]] bool active(std::size_t spec_index) const noexcept {
    return active_[spec_index];
  }
  /// Returns every window to the inactive state (a new Simulator must not
  /// inherit half-open windows from a previous timeline's unexecuted
  /// end toggles).
  void deactivate_all();

 private:
  const FaultPlan* plan_;
  std::uint64_t seed_;
  std::vector<bool> active_;
  // Active-window aggregates, maintained by set_active.
  std::vector<std::pair<int, int>> down_;  // (pci, active-window count)
  double coverage_offset_db_ = 0.0;
  int server_stall_depth_ = 0;
  int active_link_specs_ = 0;
};

/// The current thread's fault runtime; null (the default) means fault
/// injection is inert everywhere.
[[nodiscard]] Runtime* runtime() noexcept;

/// RAII installer, mirroring obs::ScopedObs: swaps the thread's runtime
/// in, restores the previous one on destruction.
class ScopedFaults {
 public:
  explicit ScopedFaults(Runtime* runtime);
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
  ~ScopedFaults();

 private:
  Runtime* prev_;
};

/// Called by every sim::Simulator at construction. With a runtime
/// installed, resets all windows to inactive and schedules one begin and
/// one end toggle per plan window ("fault.begin" / "fault.end" events,
/// emitting fault.* obs instants and the fault.injected{kind=...} counter
/// when they fire). With no runtime installed this is a no-op.
void arm(sim::Simulator& simulator);

}  // namespace fiveg::fault

// Cross-stack invariant oracle for the chaos test tier. Faulted runs are
// judged against structural truths that must hold under ANY schedule of
// injected faults — packet conservation, TCP sanity, RRC state-machine
// legality, bounded serving gaps, physical energy accounting — rather
// than against golden KPI values (which faults legitimately move).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ran/rrc.h"
#include "sim/time.h"

namespace fiveg::net {
class Link;
}
namespace fiveg::tcp {
class TcpReceiver;
class TcpSender;
}
namespace fiveg::ran {
class HandoffEngine;
}
namespace fiveg::energy {
struct EnergyResult;
}

namespace fiveg::fault {

/// Collects invariant checks; violations accumulate instead of aborting,
/// so one failed run reports every broken invariant at once.
class InvariantChecker {
 public:
  /// Packet conservation on one link: every packet ever offered to send()
  /// is exactly one of fault-dropped, queue-dropped, delivered, still
  /// queued, or in transit; and CE-marked packets (ECN) never exceed the
  /// surviving (delivered + queued + in-transit) population.
  void check_link_conservation(const net::Link& link);

  /// TCP sanity for one flow:
  ///  - cwnd never collapses below 1 MSS,
  ///  - no delivery without a send (receiver accounting is bounded by the
  ///    sender's send high-water mark),
  ///  - acked <= received <= accepted,
  ///  - retransmissions only happen out of a recovery episode (fast
  ///    retransmit or RTO) — i.e. no spontaneous retransmission.
  void check_tcp(const tcp::TcpSender& sender,
                 const tcp::TcpReceiver& receiver);

  /// Every adjacent pair in an RRC state trajectory is a legal transition
  /// (ran::rrc_transition_legal) and timestamps never decrease.
  void check_rrc_legality(
      const std::vector<std::pair<sim::Time, ran::RrcState>>& trajectory);

  /// The UE is never without a serving cell longer than `bound` per
  /// re-establishment round: every recorded gap is closed and no longer
  /// than `bound`, and the engine is not still re-establishing.
  void check_serving_continuity(const ran::HandoffEngine& engine,
                                sim::Time bound);

  /// Energy accounting is physical: non-negative total energy, no negative
  /// draw sample, and the per-phase residencies cover the whole replay
  /// (sum within one integration step of `duration`, both sides).
  void check_energy(const energy::EnergyResult& result, sim::Time step);

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] std::size_t checks_run() const noexcept {
    return checks_run_;
  }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  /// All violations joined into one human-readable block (for gtest
  /// failure messages); "ok" when none.
  [[nodiscard]] std::string report() const;

 private:
  void require(bool condition, std::string what);

  std::size_t checks_run_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace fiveg::fault

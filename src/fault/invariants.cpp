#include "fault/invariants.h"

#include <utility>

#include "energy/rrc_power_machine.h"
#include "net/link.h"
#include "ran/handoff.h"
#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace fiveg::fault {

void InvariantChecker::require(bool condition, std::string what) {
  ++checks_run_;
  if (!condition) violations_.push_back(std::move(what));
}

std::string InvariantChecker::report() const {
  if (violations_.empty()) return "ok";
  std::string out = "invariant violations:";
  for (const std::string& v : violations_) {
    out += "\n  - ";
    out += v;
  }
  return out;
}

void InvariantChecker::check_link_conservation(const net::Link& link) {
  const std::uint64_t accounted =
      link.fault_dropped_packets() + link.dropped_packets() +
      link.delivered_packets() + link.queue_packets() +
      link.in_transit_packets();
  require(link.offered_packets() == accounted,
          "link '" + link.config().name + "': offered " +
              std::to_string(link.offered_packets()) + " != accounted " +
              std::to_string(accounted) + " (fault_dropped " +
              std::to_string(link.fault_dropped_packets()) + " + dropped " +
              std::to_string(link.dropped_packets()) + " + delivered " +
              std::to_string(link.delivered_packets()) + " + queued " +
              std::to_string(link.queue_packets()) + " + in_transit " +
              std::to_string(link.in_transit_packets()) + ", marked " +
              std::to_string(link.marked_packets()) + ")");
  // CE-marked packets are signalled, never lost: each one is still in
  // exactly one of the surviving buckets.
  const std::uint64_t surviving = link.delivered_packets() +
                                  link.queue_packets() +
                                  link.in_transit_packets();
  require(link.marked_packets() <= surviving,
          "link '" + link.config().name + "': marked " +
              std::to_string(link.marked_packets()) +
              " exceeds surviving packets " + std::to_string(surviving) +
              " (delivered + queued + in_transit)");
}

void InvariantChecker::check_tcp(const tcp::TcpSender& sender,
                                 const tcp::TcpReceiver& receiver) {
  const auto mss = static_cast<double>(sender.config().mss_bytes);
  require(sender.cwnd_bytes() >= mss,
          "tcp: cwnd " + std::to_string(sender.cwnd_bytes()) +
              " bytes below 1 MSS (" + std::to_string(mss) + ")");
  require(receiver.total_accepted() <= sender.max_sent_seq(),
          "tcp: receiver accepted " +
              std::to_string(receiver.total_accepted()) +
              " bytes but sender only ever sent up to " +
              std::to_string(sender.max_sent_seq()));
  require(receiver.bytes_received() <= sender.max_sent_seq(),
          "tcp: receiver holds " + std::to_string(receiver.bytes_received()) +
              " contiguous bytes but sender only ever sent up to " +
              std::to_string(sender.max_sent_seq()));
  require(sender.bytes_acked() <= receiver.bytes_received(),
          "tcp: sender saw " + std::to_string(sender.bytes_acked()) +
              " bytes acked but receiver only received " +
              std::to_string(receiver.bytes_received()));
  require(sender.retransmissions() == 0 ||
              sender.fast_recoveries() + sender.timeouts() > 0,
          "tcp: " + std::to_string(sender.retransmissions()) +
              " retransmissions without any recovery episode");
}

void InvariantChecker::check_rrc_legality(
    const std::vector<std::pair<sim::Time, ran::RrcState>>& trajectory) {
  require(!trajectory.empty(), "rrc: empty state trajectory");
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    const auto& [t_prev, s_prev] = trajectory[i - 1];
    const auto& [t_cur, s_cur] = trajectory[i];
    require(t_cur >= t_prev,
            "rrc: trajectory time went backwards at step " +
                std::to_string(i));
    require(ran::rrc_transition_legal(s_prev, s_cur),
            "rrc: illegal transition " + ran::to_string(s_prev) + " -> " +
                ran::to_string(s_cur) + " at t=" +
                std::to_string(sim::to_millis(t_cur)) + "ms");
  }
}

void InvariantChecker::check_serving_continuity(
    const ran::HandoffEngine& engine, sim::Time bound) {
  require(!engine.reestablishing(),
          "serving: run ended while still re-establishing");
  for (const auto& gap : engine.serving_gaps()) {
    require(gap.end >= 0, "serving: gap at t=" +
                              std::to_string(sim::to_millis(gap.begin)) +
                              "ms never closed");
    if (gap.end < 0) continue;
    require(gap.end - gap.begin <= bound,
            "serving: gap of " +
                std::to_string(sim::to_millis(gap.end - gap.begin)) +
                "ms exceeds the re-establishment bound of " +
                std::to_string(sim::to_millis(bound)) + "ms");
  }
}

void InvariantChecker::check_energy(const energy::EnergyResult& result,
                                    sim::Time step) {
  require(result.radio_joules >= 0.0,
          "energy: negative total energy " +
              std::to_string(result.radio_joules) + " J");
  bool all_nonnegative = true;
  for (const measure::TimePoint& p : result.power_trace_mw.points()) {
    if (p.value < 0.0) all_nonnegative = false;
  }
  require(all_nonnegative, "energy: negative draw sample in power trace");
  const sim::Time residency_sum = result.residency_idle +
                                  result.residency_promoting +
                                  result.residency_connected;
  const sim::Time diff = residency_sum - result.duration;
  require(diff >= 0 && diff <= 2 * step,
          "energy: residencies sum to " +
              std::to_string(sim::to_millis(residency_sum)) +
              "ms but replay duration is " +
              std::to_string(sim::to_millis(result.duration)) + "ms");
}

}  // namespace fiveg::fault

#include "fault/fault.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/json_check.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace fiveg::fault {

namespace {

thread_local Runtime* g_runtime = nullptr;

[[nodiscard]] bool matches(const std::string& spec_link,
                           std::string_view link_name) {
  return spec_link.empty() ||
         link_name.find(spec_link) != std::string_view::npos;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSectorOutage: return "sector_outage";
    case FaultKind::kLinkLoss: return "link_loss";
    case FaultKind::kLinkDelay: return "link_delay";
    case FaultKind::kServerStall: return "server_stall";
    case FaultKind::kCoverageHole: return "coverage_hole";
  }
  return "unknown";
}

void FaultPlan::add(FaultSpec spec) {
  const std::string kind(to_string(spec.kind));
  if (spec.begin < 0 || spec.end <= spec.begin) {
    throw std::invalid_argument("fault " + kind +
                                ": window must satisfy 0 <= begin < end");
  }
  switch (spec.kind) {
    case FaultKind::kSectorOutage:
      if (spec.pci < 0) {
        throw std::invalid_argument("sector_outage: pci required");
      }
      break;
    case FaultKind::kLinkLoss:
      if (!(spec.loss > 0.0) || spec.loss > 1.0) {
        throw std::invalid_argument("link_loss: loss must be in (0, 1]");
      }
      break;
    case FaultKind::kLinkDelay:
      if (spec.extra_delay <= 0) {
        throw std::invalid_argument("link_delay: extra_delay must be > 0");
      }
      break;
    case FaultKind::kServerStall:
      break;
    case FaultKind::kCoverageHole:
      if (!(spec.offset_db > 0.0)) {
        throw std::invalid_argument("coverage_hole: offset_db must be > 0");
      }
      break;
  }
  specs_.push_back(std::move(spec));
}

bool FaultPlan::has_kind(FaultKind kind) const noexcept {
  for (const FaultSpec& spec : specs_) {
    if (spec.kind == kind) return true;
  }
  return false;
}

namespace {

[[nodiscard]] double require_number(const obs::JsonValue& spec,
                                    const std::string& key,
                                    const std::string& kind) {
  const obs::JsonValue* v = spec.get(key);
  if (v == nullptr || !v->is(obs::JsonValue::Type::kNumber)) {
    throw std::runtime_error("fault plan: " + kind + " requires numeric \"" +
                             key + "\"");
  }
  return v->number;
}

[[nodiscard]] sim::Time seconds_field(const obs::JsonValue& spec,
                                      const std::string& key,
                                      const std::string& kind) {
  return sim::from_seconds(require_number(spec, key, kind));
}

}  // namespace

FaultPlan FaultPlan::parse_json(std::string_view text) {
  std::string error;
  const std::unique_ptr<obs::JsonValue> root = obs::json_parse(text, &error);
  if (root == nullptr) {
    throw std::runtime_error("fault plan: invalid JSON: " + error);
  }
  if (!root->is(obs::JsonValue::Type::kObject)) {
    throw std::runtime_error("fault plan: top level must be an object");
  }
  const obs::JsonValue* schema = root->get("schema");
  if (schema == nullptr || !schema->is(obs::JsonValue::Type::kString) ||
      schema->string != "fiveg-faults/v1") {
    throw std::runtime_error(
        "fault plan: \"schema\" must be \"fiveg-faults/v1\"");
  }
  const obs::JsonValue* faults = root->get("faults");
  if (faults == nullptr || !faults->is(obs::JsonValue::Type::kArray)) {
    throw std::runtime_error("fault plan: \"faults\" array required");
  }

  FaultPlan plan;
  for (const obs::JsonValue& entry : faults->array) {
    if (!entry.is(obs::JsonValue::Type::kObject)) {
      throw std::runtime_error("fault plan: each fault must be an object");
    }
    const obs::JsonValue* kind_v = entry.get("kind");
    if (kind_v == nullptr || !kind_v->is(obs::JsonValue::Type::kString)) {
      throw std::runtime_error("fault plan: fault \"kind\" string required");
    }
    const std::string& kind = kind_v->string;

    FaultSpec spec;
    if (kind == "sector_outage") {
      spec.kind = FaultKind::kSectorOutage;
      spec.pci = static_cast<int>(require_number(entry, "pci", kind));
    } else if (kind == "link_loss") {
      spec.kind = FaultKind::kLinkLoss;
      spec.loss = require_number(entry, "loss", kind);
      if (const obs::JsonValue* link = entry.get("link"); link != nullptr) {
        if (!link->is(obs::JsonValue::Type::kString)) {
          throw std::runtime_error("fault plan: \"link\" must be a string");
        }
        spec.link = link->string;
      }
    } else if (kind == "link_delay") {
      spec.kind = FaultKind::kLinkDelay;
      spec.extra_delay =
          sim::from_millis(require_number(entry, "extra_delay_ms", kind));
      if (const obs::JsonValue* link = entry.get("link"); link != nullptr) {
        if (!link->is(obs::JsonValue::Type::kString)) {
          throw std::runtime_error("fault plan: \"link\" must be a string");
        }
        spec.link = link->string;
      }
    } else if (kind == "server_stall") {
      spec.kind = FaultKind::kServerStall;
    } else if (kind == "coverage_hole") {
      spec.kind = FaultKind::kCoverageHole;
      spec.offset_db = require_number(entry, "offset_db", kind);
    } else {
      throw std::runtime_error("fault plan: unknown kind \"" + kind + "\"");
    }
    spec.begin = seconds_field(entry, "begin_s", kind);
    spec.end = seconds_field(entry, "end_s", kind);
    try {
      plan.add(std::move(spec));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(std::string("fault plan: ") + e.what());
    }
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("fault plan: cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_json(text.str());
}

Runtime::Runtime(const FaultPlan* plan, std::uint64_t seed)
    : plan_(plan), seed_(seed), active_(plan->specs().size(), false) {}

double Runtime::link_loss(std::string_view link_name) const {
  if (active_link_specs_ == 0) return 0.0;
  double pass = 1.0;
  const auto& specs = plan_->specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!active_[i] || specs[i].kind != FaultKind::kLinkLoss) continue;
    if (matches(specs[i].link, link_name)) pass *= 1.0 - specs[i].loss;
  }
  return 1.0 - pass;
}

sim::Time Runtime::link_extra_delay(std::string_view link_name) const {
  if (active_link_specs_ == 0) return 0;
  sim::Time extra = 0;
  const auto& specs = plan_->specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!active_[i] || specs[i].kind != FaultKind::kLinkDelay) continue;
    if (matches(specs[i].link, link_name)) extra += specs[i].extra_delay;
  }
  return extra;
}

void Runtime::set_active(std::size_t spec_index, bool on) {
  if (active_[spec_index] == on) return;
  active_[spec_index] = on;
  const FaultSpec& spec = plan_->specs()[spec_index];
  const int delta = on ? 1 : -1;
  switch (spec.kind) {
    case FaultKind::kSectorOutage: {
      for (auto& [pci, count] : down_) {
        if (pci == spec.pci) {
          count += delta;
          return;
        }
      }
      down_.emplace_back(spec.pci, 1);
      break;
    }
    case FaultKind::kLinkLoss:
    case FaultKind::kLinkDelay:
      active_link_specs_ += delta;
      break;
    case FaultKind::kServerStall:
      server_stall_depth_ += delta;
      break;
    case FaultKind::kCoverageHole:
      coverage_offset_db_ += on ? spec.offset_db : -spec.offset_db;
      break;
  }
}

void Runtime::deactivate_all() {
  for (std::size_t i = 0; i < active_.size(); ++i) set_active(i, false);
}

Runtime* runtime() noexcept { return g_runtime; }

ScopedFaults::ScopedFaults(Runtime* runtime) : prev_(g_runtime) {
  g_runtime = runtime;
}

ScopedFaults::~ScopedFaults() { g_runtime = prev_; }

void arm(sim::Simulator& simulator) {
  Runtime* rt = g_runtime;
  if (rt == nullptr) return;
  // A fresh timeline starts with every window closed, even if a previous
  // Simulator on this thread ended mid-window (run_until past an unexecuted
  // end toggle).
  rt->deactivate_all();
  const auto& specs = rt->plan().specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FaultSpec& spec = specs[i];
    simulator.schedule_at(spec.begin, "fault.begin", [rt, i, &simulator] {
      rt->set_active(i, true);
      const FaultSpec& s = rt->plan().specs()[i];
      const std::string kind(to_string(s.kind));
      if (obs::MetricsRegistry* m = obs::metrics(); m != nullptr) {
        m->counter("fault.injected", {{"kind", kind}}).add();
      }
      if (obs::Tracer* t = obs::tracer(); t != nullptr) {
        t->instant(simulator.now(), "fault.begin", "fault",
                   {{"kind", kind}});
      }
    });
    simulator.schedule_at(spec.end, "fault.end", [rt, i, &simulator] {
      rt->set_active(i, false);
      const FaultSpec& s = rt->plan().specs()[i];
      if (obs::Tracer* t = obs::tracer(); t != nullptr) {
        t->instant(simulator.now(), "fault.end", "fault",
                   {{"kind", std::string(to_string(s.kind))}});
      }
    });
  }
}

}  // namespace fiveg::fault

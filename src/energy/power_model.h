// Smartphone power model: per-component draws and per-radio-state draws.
// Calibrated against the paper's Fig. 21 (the 5G module accounts for
// ~55% of total power, 1.8x the screen; 2-3x the 4G module) and Fig. 22
// (energy-per-bit at saturation: 5G ~ 1/4 of 4G).
#pragma once

#include "radio/carrier.h"
#include "ran/drx.h"

namespace fiveg::energy {

/// Non-radio component draws, milliwatts.
struct ComponentPower {
  double system_mw = 300.0;   // Android base, screen off, airplane mode
  double screen_mw = 1250.0;  // max brightness
  double app_mw = 350.0;      // app CPU/GPU (varies by app type)
};

/// Radio-state draws for one RAT, milliwatts.
struct RadioPower {
  double paging_sleep_mw;  // RRC_IDLE deep sleep
  double paging_awake_mw;  // RRC_IDLE paging occasion
  double tail_awake_mw;    // RRC_CONNECTED, no data, receiver on
  double tail_sleep_mw;    // RRC_CONNECTED, C-DRX sleeping
  double promotion_mw;     // during RRC promotion signalling
  double tx_rx_base_mw;    // actively moving data, base
  double per_mbps_mw;      // marginal draw per Mbps of throughput

  /// Draw while transferring at `mbps`.
  [[nodiscard]] double active_mw(double mbps) const noexcept {
    return tx_rx_base_mw + per_mbps_mw * mbps;
  }
};

/// 4G LTE radio (Snapdragon-class modem).
[[nodiscard]] RadioPower lte_radio_power() noexcept;

/// 5G NR NSA radio. The paper attributes the high draw to wide-band
/// converters (100 vs 20 MHz), 4x4 MIMO and the non-integrated plug-in
/// modem of early 5G phones.
[[nodiscard]] RadioPower nr_radio_power() noexcept;

/// Draw of a radio in a DRX/RRC activity state at a given throughput.
[[nodiscard]] double radio_draw_mw(const RadioPower& p,
                                   ran::RadioActivity activity,
                                   double mbps) noexcept;

/// App-type CPU/GPU draws used by the Fig. 21 experiment.
struct AppProfile {
  const char* name;
  double app_mw;        // compute draw
  double dl_demand_bps; // steady downlink demand while in use
};

/// The paper's four daily applications: Browser, Player, Game, Download.
[[nodiscard]] const AppProfile* daily_apps(int* count) noexcept;

}  // namespace fiveg::energy

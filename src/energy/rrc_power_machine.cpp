#include "energy/rrc_power_machine.h"

#include <algorithm>
#include <cstdint>

#include "obs/obs.h"
#include "ran/drx.h"

namespace fiveg::energy {
namespace {

enum class Phase { kIdle, kPromoting, kConnected };

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kIdle:
      return "energy.rrc.idle";
    case Phase::kPromoting:
      return "energy.rrc.promoting";
    case Phase::kConnected:
      return "energy.rrc.connected";
  }
  return "energy.rrc.unknown";
}

const char* activity_name(ran::RadioActivity a) noexcept {
  switch (a) {
    case ran::RadioActivity::kTransfer:
      return "transfer";
    case ran::RadioActivity::kTailAwake:
      return "tail_awake";
    case ran::RadioActivity::kTailSleep:
      return "tail_sleep";
    case ran::RadioActivity::kPagingAwake:
      return "paging_awake";
    case ran::RadioActivity::kPagingSleep:
      return "paging_sleep";
  }
  return "unknown";
}

}  // namespace

EnergyResult RrcPowerMachine::replay(const TrafficTrace& trace,
                                     RadioModel model) const {
  EnergyResult result;
  if (trace.empty()) return result;

  const sim::Time dt = config_.step;
  const bool oracle = model == RadioModel::kNrOracle;
  const bool sa = model == RadioModel::kNrSa;
  // SA keeps connection context in RRC_INACTIVE for a while after the
  // tail, enabling near-free reconnects (Rel-15 38.331, paper Appendix B).
  const sim::Time inactive_window = 20 * sim::kSecond;
  sim::Time last_idle_entry = -1;

  Phase phase = Phase::kIdle;
  ServingRat rat = initial_rat(model);
  double backlog_bytes = 0.0;
  std::size_t next_demand = 0;
  sim::Time promotion_end = 0;
  sim::Time last_activity = -1;  // end of the most recent transfer
  sim::Time idle_since = 0;

  double joules = 0.0;
  double sample_acc_mw = 0.0;
  int sample_count = 0;
  sim::Time next_sample = config_.sample_period;

  // Observability: RRC phases become spans on the "energy" track, DRX
  // activity changes become instants, and per-phase residency feeds the
  // metrics registry. The replay itself is a fixed-step loop outside the
  // Simulator, so timestamps here are the loop's own simulated clock.
  obs::Tracer* tracer = obs::tracer();
  obs::MetricsRegistry* reg = obs::metrics();
  // Every replay restarts the loop clock at 0, so each gets its own
  // counter track ("energy.draw_mw", "energy.draw_mw#1", ...): overlaying
  // policy comparisons on one track would zigzag the viewer and violate
  // the per-track time monotonicity that fiveg_trace_check enforces. The
  // replay ordinal comes from the registry's energy.replays counter
  // (incremented at the end of each replay), keeping the name
  // deterministic for any --jobs value.
  std::string draw_track = "energy.draw_mw";
  if (reg != nullptr) {
    const std::uint64_t n = reg->counter("energy.replays").value();
    if (n > 0) draw_track += "#" + std::to_string(n);
  }
  // Per-phase instantaneous draw digests: the replay loop observes every
  // fixed step, so these hold the full draw distribution per RRC phase.
  obs::Digest* draw_d[3] = {nullptr, nullptr, nullptr};
  if (reg != nullptr) {
    draw_d[static_cast<int>(Phase::kIdle)] =
        &reg->digest("energy.draw_mw", {{"phase", "idle"}});
    draw_d[static_cast<int>(Phase::kPromoting)] =
        &reg->digest("energy.draw_mw", {{"phase", "promoting"}});
    draw_d[static_cast<int>(Phase::kConnected)] =
        &reg->digest("energy.draw_mw", {{"phase", "connected"}});
  }
  sim::Time residency_idle = 0;
  sim::Time residency_promoting = 0;
  sim::Time residency_connected = 0;
  std::uint64_t drx_transitions = 0;
  Phase span_phase = phase;
  ran::RadioActivity last_drx = ran::RadioActivity::kPagingSleep;
  bool have_drx = false;
  if (tracer != nullptr) {
    tracer->begin(0, phase_name(span_phase), "energy");
  }
  const auto note_activity = [&](sim::Time t, ran::RadioActivity a) {
    if (have_drx && a == last_drx) return;
    if (have_drx) {
      ++drx_transitions;
      if (tracer != nullptr) {
        tracer->instant(t, "energy.drx_transition", "energy",
                        {{"from", activity_name(last_drx)},
                         {"to", activity_name(a)}});
      }
    }
    last_drx = a;
    have_drx = true;
  };

  const sim::Time trace_end = trace.back().at;
  // Upper bound: everything served at LTE rate + promotion + full tail.
  const sim::Time horizon =
      trace_end +
      sim::from_seconds(8.0 * static_cast<double>(trace_bytes(trace)) /
                        config_.lte_rate_bps) +
      config_.nr_drx.tail + 20 * sim::kSecond;

  for (sim::Time t = 0; t <= horizon; t += dt) {
    while (next_demand < trace.size() && trace[next_demand].at <= t) {
      backlog_bytes += static_cast<double>(trace[next_demand].bytes);
      ++next_demand;
    }
    const bool all_arrived = next_demand == trace.size();

    // --- State transitions ---
    if (backlog_bytes > 0.0) {
      if (phase == Phase::kIdle) {
        sim::Time promo = promotion_delay(
            model, config_.lte_drx.lte_promotion, config_.nr_drx.nr_promotion);
        if (sa && last_idle_entry >= 0 &&
            t - last_idle_entry < inactive_window) {
          promo = 100 * sim::kMillisecond;  // RRC_INACTIVE resume
        }
        phase = promo > 0 ? Phase::kPromoting : Phase::kConnected;
        promotion_end = t + promo;
        rat = initial_rat(model);
      } else if (phase == Phase::kPromoting && t >= promotion_end) {
        phase = Phase::kConnected;
      }
      // Dynamic escalation: LTE backlog too deep -> add the NR leg.
      if (model == RadioModel::kDynamicSwitch && phase == Phase::kConnected &&
          rat == ServingRat::kLte) {
        const double lte_drain_s =
            backlog_bytes * 8.0 / config_.lte_rate_bps;
        if (lte_drain_s > sim::to_seconds(config_.dyn_backlog_threshold)) {
          phase = Phase::kPromoting;
          promotion_end = t + config_.nr_drx.lte_to_nr;  // T4r_5r
          rat = ServingRat::kNr;
        }
      }
    } else if (phase == Phase::kConnected && last_activity >= 0) {
      // SA runs a single NR tail (no LTE re-run): half the NSA tail.
      const sim::Time tail = rat != ServingRat::kNr ? config_.lte_drx.tail
                             : sa                   ? config_.lte_drx.tail
                                                    : config_.nr_drx.tail;
      if (t - last_activity >= tail) {
        phase = Phase::kIdle;
        idle_since = t;
        last_idle_entry = t;
      }
    }

    if (phase != span_phase) {
      if (tracer != nullptr) {
        tracer->end(t, phase_name(span_phase), "energy");
        tracer->begin(t, phase_name(phase), "energy",
                      {{"rat", rat == ServingRat::kNr ? "nr" : "lte"}});
      }
      span_phase = phase;
    }
    if (phase == Phase::kIdle) {
      residency_idle += dt;
    } else if (phase == Phase::kPromoting) {
      residency_promoting += dt;
    } else {
      residency_connected += dt;
    }

    // --- Serve and compute draw ---
    const RadioPower& active_power =
        rat == ServingRat::kNr ? config_.nr_power : config_.lte_power;
    double draw_mw = 0.0;
    switch (phase) {
      case Phase::kIdle: {
        const ran::RadioActivity activity =
            ran::idle_activity(config_.lte_drx, t - idle_since);
        note_activity(t, activity);
        draw_mw = radio_draw_mw(
            config_.lte_power,  // NSA camps idle on LTE paging
            activity, 0.0);
        break;
      }
      case Phase::kPromoting:
        draw_mw = active_power.promotion_mw;
        break;
      case Phase::kConnected: {
        if (backlog_bytes > 0.0) {
          const double rate_bps = rat == ServingRat::kNr
                                      ? config_.nr_rate_bps
                                      : config_.lte_rate_bps;
          const double served =
              std::min(backlog_bytes, rate_bps / 8.0 * sim::to_seconds(dt));
          backlog_bytes -= served;
          result.served_bits += 8.0 * served;
          note_activity(t, ran::RadioActivity::kTransfer);
          draw_mw = active_power.active_mw(rate_bps / 1e6);
          last_activity = t + dt;
          if (backlog_bytes <= 0.0 && all_arrived) result.completion = t + dt;
        } else {
          // Connected tail. The NSA tail runs the NR DRX machine first,
          // then re-runs the LTE tail (Fig. 23's compounded tail). The
          // Oracle sleeps perfectly through it — it eliminates on-duration
          // and inactivity-timer waste, but cannot dodge the tail's
          // hardware sleep floor (the paper's 11-16% ceiling).
          const sim::Time since = t - last_activity;
          if (rat == ServingRat::kNr) {
            const sim::Time nr_tail_half = config_.lte_drx.tail;
            const bool in_nr_half = since < nr_tail_half;
            const RadioPower& p =
                in_nr_half ? config_.nr_power : config_.lte_power;
            const ran::RadioActivity activity =
                oracle ? ran::RadioActivity::kTailSleep
                       : ran::connected_activity(config_.nr_drx, since);
            note_activity(t, activity);
            draw_mw = radio_draw_mw(p, activity, 0.0);
          } else {
            const ran::RadioActivity activity =
                oracle ? ran::RadioActivity::kTailSleep
                       : ran::connected_activity(config_.lte_drx, since);
            note_activity(t, activity);
            draw_mw = radio_draw_mw(config_.lte_power, activity, 0.0);
          }
        }
        break;
      }
    }

    if (reg != nullptr) draw_d[static_cast<int>(phase)]->observe(draw_mw);
    joules += draw_mw / 1000.0 * sim::to_seconds(dt);
    sample_acc_mw += draw_mw;
    ++sample_count;
    if (t >= next_sample) {
      const double mean_mw = sample_acc_mw / sample_count;
      result.power_trace_mw.add(t, mean_mw);
      if (tracer != nullptr) {
        tracer->counter(t, draw_track, "energy", mean_mw);
      }
      sample_acc_mw = 0.0;
      sample_count = 0;
      next_sample += config_.sample_period;
    }

    if (all_arrived && backlog_bytes <= 0.0 && phase == Phase::kIdle &&
        t > trace_end) {
      result.duration = t;
      break;
    }
    result.duration = t;
  }

  if (tracer != nullptr) {
    tracer->end(result.duration, phase_name(span_phase), "energy");
  }
  if (reg != nullptr) {
    const auto ms = [](sim::Time t) {
      return static_cast<std::uint64_t>(t / sim::kMillisecond);
    };
    reg->counter("energy.replays").add();
    reg->counter("energy.rrc_residency_ms.idle").add(ms(residency_idle));
    reg->counter("energy.rrc_residency_ms.promoting")
        .add(ms(residency_promoting));
    reg->counter("energy.rrc_residency_ms.connected")
        .add(ms(residency_connected));
    reg->counter("energy.drx_transitions").add(drx_transitions);
    // Per-replay residency distribution (one observation per replay call,
    // so multi-replay experiments get percentiles across replays).
    reg->digest("energy.rrc_residency_ms", {{"phase", "idle"}})
        .observe(sim::to_millis(residency_idle));
    reg->digest("energy.rrc_residency_ms", {{"phase", "promoting"}})
        .observe(sim::to_millis(residency_promoting));
    reg->digest("energy.rrc_residency_ms", {{"phase", "connected"}})
        .observe(sim::to_millis(residency_connected));
  }

  result.residency_idle = residency_idle;
  result.residency_promoting = residency_promoting;
  result.residency_connected = residency_connected;
  result.radio_joules = joules;
  result.mean_radio_mw =
      result.duration > 0 ? joules * 1000.0 / sim::to_seconds(result.duration)
                          : 0.0;
  return result;
}

}  // namespace fiveg::energy

// Radio power-management policies compared in Table 4: the stock LTE and
// NR-NSA state machines, an Oracle with perfect sleep scheduling, and the
// paper's proposed dynamic 4G/5G mode switching.
#pragma once

#include <string>

#include "sim/time.h"

namespace fiveg::energy {

/// Which radio/policy serves the traffic.
enum class RadioModel {
  kLteOnly,        // legacy 4G path
  kNrNsa,          // stock 5G NSA state machine
  kNrOracle,       // NSA with perfect sleep scheduling inside the DRX tail
  kDynamicSwitch,  // the paper's proposal: camp on LTE, escalate to NR
  kNrSa,           // future SA: direct NR promotion, single tail,
                   // RRC_INACTIVE fast reconnects (paper's Appendix B)
};

[[nodiscard]] std::string to_string(RadioModel m);

/// Which RAT a model starts serving on when traffic arrives.
enum class ServingRat { kLte, kNr };

/// Promotion delay from idle for a model (Table 7 timers).
[[nodiscard]] sim::Time promotion_delay(RadioModel m, sim::Time lte_pro,
                                        sim::Time nr_pro) noexcept;

/// RAT a freshly promoted connection starts on.
[[nodiscard]] ServingRat initial_rat(RadioModel m) noexcept;

}  // namespace fiveg::energy

#include "energy/power_model.h"

#include <iterator>

namespace fiveg::energy {

RadioPower lte_radio_power() noexcept {
  RadioPower p;
  p.paging_sleep_mw = 12.0;
  p.paging_awake_mw = 350.0;
  p.tail_awake_mw = 800.0;
  // Connected-mode "sleep" on a live modem is shallow (Fig. 23's 4G tail
  // plateau sits far above idle).
  p.tail_sleep_mw = 600.0;
  p.promotion_mw = 1210.0;
  p.tx_rx_base_mw = 1240.0;
  p.per_mbps_mw = 2.0;  // 130 Mbps -> 1.5 W at day saturation
  return p;
}

RadioPower nr_radio_power() noexcept {
  RadioPower p;
  p.paging_sleep_mw = 20.0;
  p.paging_awake_mw = 500.0;
  // Connected-but-idle NR draw is intrinsically high on plug-in 5G modems
  // (~1.6x the screen), and even its C-DRX sleep floor stays high — the
  // paper's reason an Oracle sleep scheduler saves only 11-16%.
  p.tail_awake_mw = 2000.0;
  p.tail_sleep_mw = 650.0;
  p.promotion_mw = 2000.0;
  p.tx_rx_base_mw = 2300.0;
  p.per_mbps_mw = 0.57;  // 880 Mbps -> ~2.8 W at day saturation
  return p;
}

double radio_draw_mw(const RadioPower& p, ran::RadioActivity activity,
                     double mbps) noexcept {
  switch (activity) {
    case ran::RadioActivity::kTransfer:
      return p.active_mw(mbps);
    case ran::RadioActivity::kTailAwake:
      return p.tail_awake_mw;
    case ran::RadioActivity::kTailSleep:
      return p.tail_sleep_mw;
    case ran::RadioActivity::kPagingAwake:
      return p.paging_awake_mw;
    case ran::RadioActivity::kPagingSleep:
      return p.paging_sleep_mw;
  }
  return 0.0;
}

const AppProfile* daily_apps(int* count) noexcept {
  static constexpr AppProfile kApps[] = {
      {"Browser", 250.0, 12e6},
      {"Player", 420.0, 25e6},
      {"Game", 650.0, 18e6},
      {"Download", 180.0, 880e6},  // saturates whatever the RAT offers
  };
  if (count != nullptr) *count = static_cast<int>(std::size(kApps));
  return kApps;
}

}  // namespace fiveg::energy

#include "energy/power_strip.h"

#include <algorithm>

namespace fiveg::energy {

DeviceEnergyBreakdown measure_app_session(const RrcPowerMachine& machine,
                                          RadioModel model,
                                          const AppProfile& app,
                                          const ComponentPower& components,
                                          sim::Time duration) {
  // The app's traffic: a steady demand chunked per 100 ms, clipped to what
  // the serving RAT can move (the Download app saturates the link).
  const double rate_cap = model == RadioModel::kLteOnly
                              ? machine.config().lte_rate_bps
                              : machine.config().nr_rate_bps;
  const double rate = std::min(app.dl_demand_bps, rate_cap);
  TrafficTrace trace;
  const sim::Time chunk = 100 * sim::kMillisecond;
  for (sim::Time at = 0; at < duration; at += chunk) {
    trace.push_back(
        {at, static_cast<std::uint64_t>(rate / 8.0 * sim::to_seconds(chunk))});
  }
  const EnergyResult radio = machine.replay(trace, model);

  const double secs = sim::to_seconds(duration);
  DeviceEnergyBreakdown out;
  out.system_j = components.system_mw / 1000.0 * secs;
  out.screen_j = components.screen_mw / 1000.0 * secs;
  out.app_j = app.app_mw / 1000.0 * secs;
  // Attribute only the session window of radio energy (tail past the end
  // of the fixed-length session belongs to the session per the paper's
  // methodology — all Fig. 21 runs last the same time).
  out.radio_j = radio.radio_joules *
                std::min(1.0, secs / sim::to_seconds(
                                         std::max<sim::Time>(radio.duration, 1)));
  return out;
}

double saturated_energy_per_bit_uj(const RrcPowerMachine& machine,
                                   RadioModel model, sim::Time transfer_time) {
  const double rate = model == RadioModel::kLteOnly
                          ? machine.config().lte_rate_bps
                          : machine.config().nr_rate_bps;
  const auto bytes = static_cast<std::uint64_t>(
      rate / 8.0 * sim::to_seconds(transfer_time));
  const EnergyResult r =
      machine.replay(file_transfer_trace(std::max<std::uint64_t>(bytes, 1)),
                     model);
  return r.microjoules_per_bit();
}

}  // namespace fiveg::energy

// Traffic traces for the trace-driven power simulation (Sec. 6.3 / Table 4):
// the paper replays captured Wireshark traces of web browsing, UHD video
// telephony and bulk file transfer through simulated radio state machines.
// We generate equivalent synthetic traces.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace fiveg::energy {

/// One application demand: `bytes` become available to transmit at `at`.
struct TrafficDemand {
  sim::Time at = 0;
  std::uint64_t bytes = 0;
};

using TrafficTrace = std::vector<TrafficDemand>;

/// Total bytes in a trace.
[[nodiscard]] std::uint64_t trace_bytes(const TrafficTrace& t) noexcept;

/// Short web page loads: `pages` bursts of ~3 MB spaced `gap` apart — the
/// unsaturated, tail-dominated workload where 5G wastes the most energy.
[[nodiscard]] TrafficTrace web_browsing_trace(sim::Rng rng, int pages = 10,
                                              sim::Time gap = 3 * sim::kSecond);

/// Frame-by-frame UHD telephony: `duration` of 30 FPS frames at
/// `bitrate_bps` with mild fluctuation.
[[nodiscard]] TrafficTrace video_telephony_trace(
    sim::Rng rng, sim::Time duration = 60 * sim::kSecond,
    double bitrate_bps = 45e6);

/// One saturated bulk transfer of `bytes` available immediately.
[[nodiscard]] TrafficTrace file_transfer_trace(
    std::uint64_t bytes = 5ull * 1000 * 1000 * 1000);

}  // namespace fiveg::energy

// The trace-driven radio power simulator (the paper's own methodology for
// Table 4): replay a traffic trace through an RRC/DRX state machine under
// a chosen power-management model and integrate the radio's energy.
#pragma once

#include "energy/policies.h"
#include "energy/power_model.h"
#include "energy/traffic_trace.h"
#include "measure/timeseries.h"
#include "ran/rrc.h"

namespace fiveg::energy {

/// Machine parameters: power points, DRX timers and serving rates.
struct ReplayConfig {
  RadioPower lte_power = lte_radio_power();
  RadioPower nr_power = nr_radio_power();
  ran::DrxConfig lte_drx = ran::lte_drx();
  ran::DrxConfig nr_drx = ran::nr_nsa_drx();
  double lte_rate_bps = 130e6;  // daytime LTE serving rate
  double nr_rate_bps = 880e6;   // daytime NR serving rate
  sim::Time step = 10 * sim::kMillisecond;         // integration step
  sim::Time sample_period = 100 * sim::kMillisecond;  // pwrStrip cadence
  // Dynamic switch: escalate to NR when the LTE backlog exceeds this many
  // seconds of LTE airtime; the upgrade costs T4r_5r.
  sim::Time dyn_backlog_threshold = 500 * sim::kMillisecond;
};

/// Outcome of one replay.
struct EnergyResult {
  double radio_joules = 0.0;
  sim::Time completion = 0;  // when the last byte was served
  sim::Time duration = 0;    // until the machine returned to idle
  measure::TimeSeries power_trace_mw;  // radio draw at pwrStrip cadence
  double mean_radio_mw = 0.0;
  double served_bits = 0.0;
  // Per-phase residency, one `step` per loop iteration. Their sum covers
  // every integration step, i.e. equals `duration + step` (the loop runs
  // t = 0..duration inclusive) — an invariant fault::InvariantChecker
  // audits.
  sim::Time residency_idle = 0;
  sim::Time residency_promoting = 0;
  sim::Time residency_connected = 0;

  /// Radio energy per served bit, microjoules.
  [[nodiscard]] double microjoules_per_bit() const noexcept {
    return served_bits > 0 ? radio_joules * 1e6 / served_bits : 0.0;
  }
};

/// Deterministic fixed-step replay engine.
class RrcPowerMachine {
 public:
  explicit RrcPowerMachine(ReplayConfig config = {}) : config_(config) {}

  /// Replays `trace` under `model`; runs until the tail fully drains.
  [[nodiscard]] EnergyResult replay(const TrafficTrace& trace,
                                    RadioModel model) const;

  [[nodiscard]] const ReplayConfig& config() const noexcept { return config_; }

 private:
  ReplayConfig config_;
};

}  // namespace fiveg::energy

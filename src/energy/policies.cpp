#include "energy/policies.h"

namespace fiveg::energy {

std::string to_string(RadioModel m) {
  switch (m) {
    case RadioModel::kLteOnly:
      return "LTE";
    case RadioModel::kNrNsa:
      return "NR NSA";
    case RadioModel::kNrOracle:
      return "NR Oracle";
    case RadioModel::kDynamicSwitch:
      return "Dyn. switch";
    case RadioModel::kNrSa:
      return "NR SA";
  }
  return "?";
}

sim::Time promotion_delay(RadioModel m, sim::Time lte_pro,
                          sim::Time nr_pro) noexcept {
  switch (m) {
    case RadioModel::kLteOnly:
    case RadioModel::kDynamicSwitch:  // camps on LTE first
      return lte_pro;
    case RadioModel::kNrNsa:
      return nr_pro;
    case RadioModel::kNrOracle:
      // The Oracle schedules sleep perfectly but still signals its way up
      // the NSA ladder — the paper's Oracle saves only 11-16% vs NSA,
      // which rules out free promotions.
      return nr_pro;
    case RadioModel::kNrSa:
      // Direct NR RRC setup, no LTE detour: roughly the LTE promotion
      // cost. RRC_INACTIVE fast reconnects are handled by the replayer.
      return lte_pro;
  }
  return 0;
}

ServingRat initial_rat(RadioModel m) noexcept {
  switch (m) {
    case RadioModel::kLteOnly:
    case RadioModel::kDynamicSwitch:
      return ServingRat::kLte;
    case RadioModel::kNrNsa:
    case RadioModel::kNrOracle:
    case RadioModel::kNrSa:
      return ServingRat::kNr;
  }
  return ServingRat::kLte;
}

}  // namespace fiveg::energy

// pwrStrip: the paper's custom energy logger, reading "battery" power at a
// 100 ms cadence and attributing it across components. Here it composes a
// radio replay with the component power model to produce the Fig. 21
// breakdowns, Fig. 22 efficiency curves and the Fig. 23 trace.
#pragma once

#include "energy/power_model.h"
#include "energy/rrc_power_machine.h"

namespace fiveg::energy {

/// Device-level energy split over one scenario.
struct DeviceEnergyBreakdown {
  double system_j = 0.0;
  double screen_j = 0.0;
  double app_j = 0.0;
  double radio_j = 0.0;

  [[nodiscard]] double total_j() const noexcept {
    return system_j + screen_j + app_j + radio_j;
  }
  [[nodiscard]] double radio_share() const noexcept {
    const double t = total_j();
    return t > 0 ? radio_j / t : 0.0;
  }
  /// Mean total power over `duration`, milliwatts.
  [[nodiscard]] double mean_power_mw(sim::Time duration) const noexcept {
    return duration > 0 ? total_j() * 1000.0 / sim::to_seconds(duration) : 0.0;
  }
};

/// Measures a fixed-duration app session: the app's downlink demand is
/// replayed on the given radio model and non-radio components burn at
/// their constant draws for the whole session.
[[nodiscard]] DeviceEnergyBreakdown measure_app_session(
    const RrcPowerMachine& machine, RadioModel model, const AppProfile& app,
    const ComponentPower& components, sim::Time duration);

/// Energy efficiency of a saturated transfer lasting `transfer_time`
/// (Fig. 22): radio microjoules per delivered bit, tail included.
[[nodiscard]] double saturated_energy_per_bit_uj(
    const RrcPowerMachine& machine, RadioModel model,
    sim::Time transfer_time);

}  // namespace fiveg::energy

#include "energy/traffic_trace.h"

#include <algorithm>

namespace fiveg::energy {

std::uint64_t trace_bytes(const TrafficTrace& t) noexcept {
  std::uint64_t total = 0;
  for (const TrafficDemand& d : t) total += d.bytes;
  return total;
}

TrafficTrace web_browsing_trace(sim::Rng rng, int pages, sim::Time gap) {
  TrafficTrace t;
  sim::Time at = 0;
  for (int i = 0; i < pages; ++i) {
    const double mb = std::clamp(rng.normal(3.0, 1.0), 0.5, 8.0);
    t.push_back({at, static_cast<std::uint64_t>(mb * 1e6)});
    at += gap;
  }
  return t;
}

TrafficTrace video_telephony_trace(sim::Rng rng, sim::Time duration,
                                   double bitrate_bps) {
  TrafficTrace t;
  const sim::Time frame_gap = sim::kSecond / 30;
  const double mean_frame = bitrate_bps / 8.0 / 30.0;
  for (sim::Time at = 0; at < duration; at += frame_gap) {
    const double bytes =
        std::max(2000.0, mean_frame * rng.lognormal(-0.02, 0.2));
    t.push_back({at, static_cast<std::uint64_t>(bytes)});
  }
  return t;
}

TrafficTrace file_transfer_trace(std::uint64_t bytes) {
  return {{0, bytes}};
}

}  // namespace fiveg::energy
